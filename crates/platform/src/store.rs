//! Optimistic-commit placement store: the single source of truth for
//! server residual headroom shared by N scheduler shards.
//!
//! The store keeps one *versioned* entry per server — the residual
//! capacity row plus a monotonically increasing version that is bumped by
//! every mutation (commit, reserve, release, failure, repair). Scheduler
//! shards solve on a [`StoreSnapshot`] (a point-in-time clone of the
//! residual infrastructure plus all versions) and then propose their
//! placements back through [`PlacementStore::try_commit`]:
//!
//! * if every touched server still **fits** the proposed demand, the
//!   commit is applied atomically — per-VM, in order, with the exact same
//!   [`Infrastructure::adjust_capacity`] calls the native (unsharded)
//!   admission path makes, so the residual stays bit-identical to a
//!   sequential execution of the same commit sequence;
//! * otherwise the commit **bounces** with a [`ConflictReason`]:
//!   [`ConflictReason::Stale`] when a touched server changed under the
//!   shard (it lost the race and may win after a re-solve) or
//!   [`ConflictReason::Capacity`] when the placement never fit the
//!   snapshot it was solved on (a solver bug — should not happen).
//!
//! Staleness alone does **not** invalidate a commit: a placement solved
//! on an old snapshot that still fits the current residual is accepted.
//! This keeps the conflict rate proportional to genuine capacity races
//! rather than to snapshot age.
//!
//! Every commit decision is recorded on the flight ring
//! ([`FlightKind::Committed`] / [`FlightKind::Conflicted`], with the
//! request's correlation key, window and retry round) so a request's
//! path scheduler → store → executor is one traceable timeline. A
//! bounce additionally emits [`FlightKind::CommitAttempt`] naming the
//! first server the proposal overdrew and the [`ConflictReason`] tag —
//! the raw material for per-server conflict hotspot attribution.
//!
//! Interior mutability is a single [`Mutex`] around the whole entry
//! table: commits must observe a consistent multi-server state, and the
//! commit critical section is O(touched servers × h) — far smaller than
//! the solve work done outside it. The store is `Send + Sync` and is
//! shared via [`std::sync::Arc`].

use cpo_model::prelude::*;
use cpo_obs::flight::{self, FlightKind};
use std::sync::Mutex;
use std::time::Instant;

/// Slack when re-validating a proposed placement against the current
/// residual: absorbs the floating-point disagreement between the
/// solver's own feasibility arithmetic and the store's re-check.
const FIT_EPS: f64 = 1e-9;

/// Builds the residual-headroom view of `infra`: capacity rows start at
/// the *effective* capacity (factors already applied, so residual factors
/// are 1.0); admissions carve demand out, departures return it.
pub fn residual_view(infra: &Infrastructure) -> Infrastructure {
    let h = infra.attr_count();
    let dcs = infra
        .datacenters()
        .iter()
        .map(|dc| {
            let servers = dc
                .servers()
                .map(|j| {
                    let s = infra.server(j);
                    Server {
                        capacity: (0..h).map(|l| s.effective_capacity(AttrId(l))).collect(),
                        factor: vec![1.0; h],
                        opex: s.opex,
                        usage_cost: s.usage_cost,
                        max_load: s.max_load.clone(),
                        max_qos: s.max_qos.clone(),
                    }
                })
                .collect();
            (dc.name.clone(), servers)
        })
        .collect();
    Infrastructure::new(infra.attrs().clone(), dcs)
}

/// Why an optimistic commit bounced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictReason {
    /// A touched server's version moved since the snapshot and the
    /// proposed demand no longer fits — the shard lost a capacity race
    /// and should re-solve on a fresh snapshot.
    Stale,
    /// The placement does not fit even though no touched server changed:
    /// the proposal was infeasible on its own snapshot. Indicates a
    /// solver bug; surfaced instead of silently oversubscribing.
    Capacity,
}

impl ConflictReason {
    /// Stable label for counters and reports.
    pub fn label(self) -> &'static str {
        match self {
            ConflictReason::Stale => "stale",
            ConflictReason::Capacity => "capacity",
        }
    }

    /// Stable numeric tag carried in the `b` slot of
    /// [`FlightKind::CommitAttempt`] events (0 = stale, 1 = capacity).
    pub fn tag(self) -> u64 {
        match self {
            ConflictReason::Stale => 0,
            ConflictReason::Capacity => 1,
        }
    }
}

/// Correlation context for one commit attempt, threaded onto the flight
/// ring so commits and conflicts are attributable per request.
#[derive(Clone, Copy, Debug)]
pub struct CommitCtx {
    /// Flight correlation key ([`flight::NONE`] when untraced).
    pub key: u64,
    /// Tenant id the request was registered under.
    pub tenant: u64,
    /// Window being scheduled.
    pub window: u64,
    /// Retry round of this attempt (0 = first attempt).
    pub round: u64,
}

/// Point-in-time view a shard solves against: the residual infrastructure
/// plus the per-server versions it was taken at.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// Residual headroom at snapshot time (factors all 1.0).
    pub residual: Infrastructure,
    /// Per-server versions at snapshot time.
    pub versions: Vec<u64>,
}

/// Cumulative commit statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Accepted commits.
    pub commits: u64,
    /// Bounced commits (any reason).
    pub conflicts: u64,
    /// Bounces with [`ConflictReason::Capacity`] — should stay zero.
    pub capacity_conflicts: u64,
}

impl StoreMetrics {
    /// Total commit attempts (accepted + bounced).
    pub fn attempts(&self) -> u64 {
        self.commits + self.conflicts
    }

    /// Fraction of attempts that bounced. A run that attempts nothing
    /// (empty window, all-rejected) has no conflicts by definition, so
    /// the rate is 0.0 — never NaN.
    pub fn conflict_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.attempts() as f64
        }
    }

    /// The per-window delta of `self` over an earlier `baseline`
    /// reading of the same store.
    pub fn since(&self, baseline: &StoreMetrics) -> StoreMetrics {
        StoreMetrics {
            commits: self.commits - baseline.commits,
            conflicts: self.conflicts - baseline.conflicts,
            capacity_conflicts: self.capacity_conflicts - baseline.capacity_conflicts,
        }
    }
}

struct StoreInner {
    residual: Infrastructure,
    versions: Vec<u64>,
    offline: Vec<bool>,
    metrics: StoreMetrics,
}

/// Versioned per-server residual store with optimistic atomic commits.
pub struct PlacementStore {
    inner: Mutex<StoreInner>,
}

impl PlacementStore {
    /// A store over the full effective capacity of `infra` (idle fleet).
    pub fn new(infra: &Infrastructure) -> Self {
        Self::from_residual(residual_view(infra))
    }

    /// A store over an explicit residual view — used to materialise a
    /// per-window admission store from live executor state (capacity
    /// rows already reduced by resident load, offline servers zeroed).
    pub fn from_residual(residual: Infrastructure) -> Self {
        let m = residual.server_count();
        Self {
            inner: Mutex::new(StoreInner {
                residual,
                versions: vec![0; m],
                offline: vec![false; m],
                metrics: StoreMetrics::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("placement store poisoned")
    }

    /// Number of servers tracked.
    pub fn server_count(&self) -> usize {
        self.lock().residual.server_count()
    }

    /// Takes a consistent snapshot: residual clone + all versions.
    pub fn snapshot(&self) -> StoreSnapshot {
        let inner = self.lock();
        StoreSnapshot {
            residual: inner.residual.clone(),
            versions: inner.versions.clone(),
        }
    }

    /// Clone of the current residual, without versions — the native
    /// (unsharded) path packs each window's problem against this.
    pub fn residual_clone(&self) -> Infrastructure {
        self.lock().residual.clone()
    }

    /// Current residual row of server `j` (for tests and verification).
    pub fn residual_row(&self, j: ServerId) -> Vec<f64> {
        self.lock().residual.effective_row(j).to_vec()
    }

    /// Current version of server `j`.
    pub fn version(&self, j: ServerId) -> u64 {
        self.lock().versions[j.index()]
    }

    /// Cumulative commit/conflict counts.
    pub fn metrics(&self) -> StoreMetrics {
        self.lock().metrics
    }

    /// Validates `placements` (one `(server, demand)` entry per VM of a
    /// request, in VM order) against the current residual and, if every
    /// touched server still fits, applies them atomically — per VM, in
    /// order, via `adjust_capacity`, exactly as the native sequential
    /// admission path would. Versions of touched servers are bumped once
    /// per applied VM. On a bounce nothing is mutated except the
    /// conflict counters.
    ///
    /// Emits [`FlightKind::Committed`] / [`FlightKind::Conflicted`] with
    /// `ctx`'s correlation key so the decision lands on the request's
    /// timeline, and records the commit latency histogram
    /// (`store.commit_ns`).
    pub fn try_commit(
        &self,
        placements: &[(ServerId, &[f64])],
        snapshot_versions: &[u64],
        ctx: &CommitCtx,
    ) -> Result<(), ConflictReason> {
        let start = Instant::now();
        let mut inner = self.lock();
        let result = inner.validate_and_apply(placements, snapshot_versions);
        match result {
            Ok(()) => {
                inner.metrics.commits += 1;
                flight::record(
                    FlightKind::Committed,
                    ctx.key,
                    ctx.tenant,
                    ctx.window,
                    ctx.round,
                );
            }
            Err((reason, server)) => {
                inner.metrics.conflicts += 1;
                if reason == ConflictReason::Capacity {
                    inner.metrics.capacity_conflicts += 1;
                }
                // One attempt-level event per bounce, carrying the first
                // server that no longer fits — the profiler's hot-server
                // tables count these, so their sum equals `conflicts`.
                flight::record(
                    FlightKind::CommitAttempt,
                    ctx.key,
                    ctx.tenant,
                    server.index() as u64,
                    reason.tag(),
                );
                flight::record(
                    FlightKind::Conflicted,
                    ctx.key,
                    ctx.tenant,
                    ctx.window,
                    ctx.round,
                );
            }
        }
        drop(inner);
        cpo_obs::record_value("store.commit_ns", start.elapsed().as_nanos() as u64);
        result.map_err(|(reason, _)| reason)
    }

    /// Carves `demand` out of server `j`'s residual (no-op when the
    /// server is offline — a failed server has no headroom to consume).
    /// This is the native path's per-VM admission hook; it bumps the
    /// version like any other mutation.
    pub fn reserve(&self, j: ServerId, demand: &[f64]) {
        let mut inner = self.lock();
        if inner.offline[j.index()] {
            return;
        }
        let neg: Vec<f64> = demand.iter().map(|d| -d).collect();
        inner.residual.adjust_capacity(j, &neg);
        inner.versions[j.index()] += 1;
    }

    /// Returns `demand` to server `j`'s residual on departure (no-op
    /// when offline — stranded capacity comes back via [`restore`]).
    ///
    /// [`restore`]: PlacementStore::restore
    pub fn release(&self, j: ServerId, demand: &[f64]) {
        let mut inner = self.lock();
        if inner.offline[j.index()] {
            return;
        }
        inner.residual.adjust_capacity(j, demand);
        inner.versions[j.index()] += 1;
    }

    /// Fails server `j`: residual drops to zero so no commit can land
    /// there, and the entry is marked offline.
    pub fn fail(&self, j: ServerId) {
        let mut inner = self.lock();
        let h = inner.residual.attr_count();
        inner.residual.set_capacity(j, &vec![0.0; h]);
        inner.offline[j.index()] = true;
        inner.versions[j.index()] += 1;
    }

    /// Repairs server `j`, restoring its residual to `row` (effective
    /// capacity minus whatever load is still resident).
    pub fn restore(&self, j: ServerId, row: &[f64]) {
        let mut inner = self.lock();
        inner.residual.set_capacity(j, row);
        inner.offline[j.index()] = false;
        inner.versions[j.index()] += 1;
    }

    /// Whether server `j` is marked offline.
    pub fn is_offline(&self, j: ServerId) -> bool {
        self.lock().offline[j.index()]
    }
}

impl StoreInner {
    /// On a bounce, returns the reason plus the first touched server
    /// (in first-touch order) whose residual the proposal overdraws —
    /// the attribution target for hot-server conflict tables.
    fn validate_and_apply(
        &mut self,
        placements: &[(ServerId, &[f64])],
        snapshot_versions: &[u64],
    ) -> Result<(), (ConflictReason, ServerId)> {
        // Touched servers, deduplicated in first-touch order.
        let mut touched: Vec<usize> = Vec::with_capacity(placements.len());
        for &(j, _) in placements {
            if !touched.contains(&j.index()) {
                touched.push(j.index());
            }
        }
        let stale = touched.iter().any(|&j| {
            self.offline[j] || self.versions[j] != snapshot_versions.get(j).copied().unwrap_or(0)
        });
        // Fit check: walk the proposed per-VM subtractions over a copy of
        // the touched rows; all demands are non-negative, so checking the
        // final rows is equivalent to checking after every VM.
        let mut rows: Vec<Vec<f64>> = touched
            .iter()
            .map(|&j| self.residual.effective_row(ServerId(j)).to_vec())
            .collect();
        for &(j, demand) in placements {
            let slot = touched
                .iter()
                .position(|&t| t == j.index())
                .expect("touched");
            for (c, d) in rows[slot].iter_mut().zip(demand) {
                *c -= d;
            }
        }
        if let Some(slot) = rows
            .iter()
            .position(|row| row.iter().any(|&c| c < -FIT_EPS))
        {
            let reason = if stale {
                ConflictReason::Stale
            } else {
                ConflictReason::Capacity
            };
            return Err((reason, ServerId(touched[slot])));
        }
        // Fits now → apply per VM, in order, through the same
        // adjust_capacity calls the sequential path makes, so the
        // residual floats are bit-identical to an unsharded execution of
        // the same admission sequence.
        for &(j, demand) in placements {
            let neg: Vec<f64> = demand.iter().map(|d| -d).collect();
            self.residual.adjust_capacity(j, &neg);
            self.versions[j.index()] += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn infra(servers: usize) -> Infrastructure {
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        )
    }

    fn ctx() -> CommitCtx {
        CommitCtx {
            key: flight::NONE,
            tenant: 0,
            window: 0,
            round: 0,
        }
    }

    #[test]
    fn commit_reserves_and_bumps_versions() {
        let store = PlacementStore::new(&infra(2));
        let snap = store.snapshot();
        let before = store.residual_row(ServerId(0));
        let demand = vec![2.0, 4096.0, 40.0];
        store
            .try_commit(
                &[(ServerId(0), &demand), (ServerId(0), &demand)],
                &snap.versions,
                &ctx(),
            )
            .expect("fits an idle fleet");
        let after = store.residual_row(ServerId(0));
        for l in 0..3 {
            assert!((before[l] - 2.0 * demand[l] - after[l]).abs() < 1e-12);
        }
        assert_eq!(store.version(ServerId(0)), 2, "one bump per applied VM");
        assert_eq!(store.version(ServerId(1)), 0, "untouched server");
        assert_eq!(store.metrics().commits, 1);
        assert_eq!(store.metrics().conflicts, 0);
    }

    #[test]
    fn stale_but_fitting_commit_is_accepted() {
        let store = PlacementStore::new(&infra(1));
        let snap = store.snapshot();
        // Another shard commits first — the snapshot goes stale.
        let small = vec![1.0, 1024.0, 10.0];
        store
            .try_commit(&[(ServerId(0), &small)], &snap.versions, &ctx())
            .unwrap();
        // The stale proposal still fits → accepted, not bounced.
        store
            .try_commit(&[(ServerId(0), &small)], &snap.versions, &ctx())
            .expect("staleness alone must not bounce a fitting commit");
        assert_eq!(store.metrics().commits, 2);
    }

    #[test]
    fn losing_a_capacity_race_bounces_stale() {
        let store = PlacementStore::new(&infra(1));
        let snap = store.snapshot();
        let row = store.residual_row(ServerId(0));
        // Each proposal alone consumes ~80% of the CPU row.
        let big = vec![row[0] * 0.8, 1024.0, 10.0];
        store
            .try_commit(&[(ServerId(0), &big)], &snap.versions, &ctx())
            .unwrap();
        let err = store
            .try_commit(&[(ServerId(0), &big)], &snap.versions, &ctx())
            .expect_err("second 80% cannot fit");
        assert_eq!(err, ConflictReason::Stale);
        let m = store.metrics();
        assert_eq!((m.commits, m.conflicts, m.capacity_conflicts), (1, 1, 0));
        // The bounce mutated nothing.
        let after = store.residual_row(ServerId(0));
        assert!((after[0] - row[0] * 0.2).abs() < 1e-9);
    }

    #[test]
    fn infeasible_on_fresh_snapshot_is_a_capacity_conflict() {
        let store = PlacementStore::new(&infra(1));
        let snap = store.snapshot();
        let row = store.residual_row(ServerId(0));
        let oversized = vec![row[0] * 2.0, 1024.0, 10.0];
        let err = store
            .try_commit(&[(ServerId(0), &oversized)], &snap.versions, &ctx())
            .expect_err("twice the row cannot fit");
        assert_eq!(err, ConflictReason::Capacity);
        assert_eq!(store.metrics().capacity_conflicts, 1);
    }

    #[test]
    fn failed_server_bounces_until_restored() {
        let store = PlacementStore::new(&infra(1));
        let snap = store.snapshot();
        let demand = vec![1.0, 1024.0, 10.0];
        store.fail(ServerId(0));
        assert!(store.is_offline(ServerId(0)));
        let err = store
            .try_commit(&[(ServerId(0), &demand)], &snap.versions, &ctx())
            .expect_err("offline server has no headroom");
        assert_eq!(err, ConflictReason::Stale);
        // reserve/release are no-ops while offline.
        store.reserve(ServerId(0), &demand);
        store.release(ServerId(0), &demand);
        assert!(store.residual_row(ServerId(0)).iter().all(|&c| c == 0.0));
        store.restore(ServerId(0), &[4.0, 4096.0, 40.0]);
        assert!(!store.is_offline(ServerId(0)));
        store
            .try_commit(&[(ServerId(0), &demand)], &snap.versions, &ctx())
            .expect("restored headroom accepts again");
    }

    #[test]
    fn reserve_matches_commit_arithmetic_bitwise() {
        // The sharded path (try_commit) and the native path (reserve per
        // VM) must leave bit-identical residuals for the same admission
        // sequence — this is the float contract the equivalence suite
        // leans on.
        let committed = PlacementStore::new(&infra(1));
        let reserved = PlacementStore::new(&infra(1));
        let demands = [
            vec![1.5, 3333.0, 17.0],
            vec![0.1, 1.0, 0.3],
            vec![2.25, 4096.0, 40.0],
        ];
        let snap = committed.snapshot();
        let placements: Vec<(ServerId, &[f64])> = demands
            .iter()
            .map(|d| (ServerId(0), d.as_slice()))
            .collect();
        committed
            .try_commit(&placements, &snap.versions, &ctx())
            .unwrap();
        for d in &demands {
            reserved.reserve(ServerId(0), d);
        }
        assert_eq!(
            committed.residual_row(ServerId(0)),
            reserved.residual_row(ServerId(0)),
            "commit and reserve must be the same float sequence"
        );
    }

    #[test]
    fn conflict_rate_of_an_idle_store_is_zero_not_nan() {
        let m = StoreMetrics::default();
        assert_eq!(m.attempts(), 0);
        assert_eq!(m.conflict_rate(), 0.0, "empty window must not yield NaN");
        let busy = StoreMetrics {
            commits: 3,
            conflicts: 1,
            capacity_conflicts: 0,
        };
        assert_eq!(busy.attempts(), 4);
        assert!((busy.conflict_rate() - 0.25).abs() < 1e-12);
        let delta = busy.since(&StoreMetrics {
            commits: 2,
            conflicts: 1,
            capacity_conflicts: 0,
        });
        assert_eq!((delta.commits, delta.conflicts), (1, 0));
        assert_eq!(
            delta.conflict_rate(),
            0.0,
            "all-commit delta has no conflicts"
        );
    }

    #[test]
    fn bounce_emits_a_commit_attempt_naming_the_offending_server() {
        let store = PlacementStore::new(&infra(2));
        let snap = store.snapshot();
        let row = store.residual_row(ServerId(1));
        let small = vec![1.0, 1.0, 1.0];
        let oversized = vec![row[0] * 2.0, 1.0, 1.0];
        flight::enable();
        let err = store
            .try_commit(
                // Server 0 fits; server 1 is the first overdraw.
                &[(ServerId(0), &small), (ServerId(1), &oversized)],
                &snap.versions,
                &CommitCtx {
                    key: 77,
                    tenant: 5,
                    window: 2,
                    round: 0,
                },
            )
            .expect_err("server 1 cannot fit twice its row");
        let events = flight::snapshot().events;
        flight::disable();
        flight::reset();
        assert_eq!(err, ConflictReason::Capacity);
        let attempt = events
            .iter()
            .find(|e| e.kind == FlightKind::CommitAttempt && e.key == 77)
            .expect("bounce must emit a commit_attempt event");
        assert_eq!(attempt.a, 1, "names the first infeasible server");
        assert_eq!(attempt.b, ConflictReason::Capacity.tag());
        assert!(
            events
                .iter()
                .any(|e| e.kind == FlightKind::Conflicted && e.key == 77),
            "round-level conflicted event still follows"
        );
    }

    #[test]
    fn concurrent_commits_never_oversubscribe() {
        // Hammer one hot server from 4 threads, all racing the same
        // snapshot. Total committed demand must fit the original row.
        let store = std::sync::Arc::new(PlacementStore::new(&infra(1)));
        let row = store.residual_row(ServerId(0));
        let snap = store.snapshot();
        let demand = vec![row[0] / 3.0, 1.0, 1.0];
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = store.clone();
            let versions = snap.versions.clone();
            let demand = demand.clone();
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for _ in 0..4 {
                    if store
                        .try_commit(&[(ServerId(0), &demand)], &versions, &ctx())
                        .is_ok()
                    {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let wins: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(wins, 3, "exactly three thirds fit");
        let m = store.metrics();
        assert_eq!(m.commits, 3);
        assert_eq!(m.conflicts, 16 - 3);
        assert_eq!(m.capacity_conflicts, 0, "only Stale bounces expected");
        let after = store.residual_row(ServerId(0));
        assert!(after[0] >= -1e-9, "never oversubscribed: {}", after[0]);
    }
}
