//! East-west network accounting: maps the model's servers onto the
//! spine-leaf pods (cpo-topology) and admits a bandwidth flow between
//! every pair of a tenant's VMs that land on different servers of the
//! same datacenter — the traffic the paper's co-location rules exist to
//! manage. Cross-datacenter pairs are tallied as WAN traffic (not
//! admitted against the fabric).

use crate::tenant::{Tenant, TenantId};
use cpo_model::prelude::{Infrastructure, ServerId};
use cpo_topology::{BuiltPod, LinkId, NodeId};
use std::collections::HashMap;

/// One admitted fabric flow.
#[derive(Clone, Debug)]
struct Flow {
    pod: usize,
    path: Vec<LinkId>,
    bandwidth: f64,
}

/// Result of admitting a tenant's flows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowAdmission {
    /// Intra-datacenter flows successfully reserved.
    pub admitted: usize,
    /// Flows that did not fit the fabric (congestion).
    pub denied: usize,
    /// Cross-datacenter pairs (WAN, not reserved).
    pub wan_pairs: usize,
}

/// The network model: pods + server mapping + per-tenant flows.
pub struct NetworkModel {
    pods: Vec<BuiltPod>,
    /// Global server id → (pod index, node in that pod).
    server_node: Vec<(usize, NodeId)>,
    /// Bandwidth reserved per VM pair (Mbit/s).
    per_pair_bw: f64,
    flows: HashMap<TenantId, Vec<Flow>>,
}

impl NetworkModel {
    /// Builds the mapping. Each pod must have at least as many server
    /// slots as its datacenter has servers.
    ///
    /// # Panics
    /// Panics when a pod is too small for its datacenter.
    pub fn new(infra: &Infrastructure, pods: Vec<BuiltPod>, per_pair_bw: f64) -> Self {
        assert_eq!(
            infra.datacenter_count(),
            pods.len(),
            "one pod per datacenter"
        );
        let mut server_node = Vec::with_capacity(infra.server_count());
        for (p, dc) in infra.datacenters().iter().enumerate() {
            assert!(
                pods[p].servers.len() >= dc.server_count,
                "pod {p} has {} slots for {} servers",
                pods[p].servers.len(),
                dc.server_count
            );
            for s in 0..dc.server_count {
                server_node.push((p, pods[p].servers[s]));
            }
        }
        Self {
            pods,
            server_node,
            per_pair_bw,
            flows: HashMap::new(),
        }
    }

    /// Admits flows for every cross-server VM pair of a tenant.
    pub fn admit_tenant(&mut self, tenant: &Tenant) -> FlowAdmission {
        let mut admission = FlowAdmission::default();
        let mut flows = Vec::new();
        for (a, &ja) in tenant.placement.iter().enumerate() {
            for &jb in tenant.placement.iter().skip(a + 1) {
                if ja == jb {
                    continue; // same host: memory-speed, no fabric traffic
                }
                let (pa, na) = self.node_of(ja);
                let (pb, nb) = self.node_of(jb);
                if pa != pb {
                    admission.wan_pairs += 1;
                    continue;
                }
                match self.pods[pa].fabric.admit_flow(na, nb, self.per_pair_bw) {
                    Some(path) => {
                        flows.push(Flow {
                            pod: pa,
                            path,
                            bandwidth: self.per_pair_bw,
                        });
                        admission.admitted += 1;
                    }
                    None => admission.denied += 1,
                }
            }
        }
        if !flows.is_empty() {
            self.flows.insert(tenant.id, flows);
        }
        admission
    }

    /// Releases all flows of a tenant (departure or pre-migration).
    pub fn release_tenant(&mut self, id: TenantId) {
        if let Some(flows) = self.flows.remove(&id) {
            for f in flows {
                self.pods[f.pod].fabric.release_path(&f.path, f.bandwidth);
            }
        }
    }

    /// Re-admits a tenant after its placement changed.
    pub fn readmit_tenant(&mut self, tenant: &Tenant) -> FlowAdmission {
        self.release_tenant(tenant.id);
        self.admit_tenant(tenant)
    }

    fn node_of(&self, j: ServerId) -> (usize, NodeId) {
        self.server_node[j.index()]
    }

    /// Peak link utilisation across all pods.
    pub fn peak_utilization(&self) -> f64 {
        self.pods
            .iter()
            .map(|p| p.fabric.peak_utilization())
            .fold(0.0, f64::max)
    }

    /// Mean link utilisation across all pods.
    pub fn mean_utilization(&self) -> f64 {
        if self.pods.is_empty() {
            return 0.0;
        }
        self.pods
            .iter()
            .map(|p| p.fabric.mean_utilization())
            .sum::<f64>()
            / self.pods.len() as f64
    }

    /// Number of tenants with reserved flows.
    pub fn tenants_with_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::{vm_spec, Infrastructure, ServerProfile};
    use cpo_topology::{build_spine_leaf, SpineLeafSpec};

    fn setup() -> (Infrastructure, Vec<BuiltPod>) {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), profile.build_many(4)),
                ("dc1".into(), profile.build_many(4)),
            ],
        );
        let pods = vec![
            build_spine_leaf(&SpineLeafSpec::for_server_count(4)),
            build_spine_leaf(&SpineLeafSpec::for_server_count(4)),
        ];
        (infra, pods)
    }

    fn tenant(id: u64, placement: Vec<usize>) -> Tenant {
        Tenant {
            id: TenantId(id),
            vms: vec![vm_spec(1.0, 1.0, 1.0); placement.len()],
            rules: vec![],
            placement: placement.into_iter().map(ServerId).collect(),
            remaining_windows: 5,
        }
    }

    #[test]
    fn same_server_pairs_need_no_fabric() {
        let (infra, pods) = setup();
        let mut net = NetworkModel::new(&infra, pods, 1_000.0);
        let a = net.admit_tenant(&tenant(1, vec![0, 0, 0]));
        assert_eq!(
            a,
            FlowAdmission {
                admitted: 0,
                denied: 0,
                wan_pairs: 0
            }
        );
        assert_eq!(net.peak_utilization(), 0.0);
    }

    #[test]
    fn cross_server_pairs_reserve_bandwidth() {
        let (infra, pods) = setup();
        let mut net = NetworkModel::new(&infra, pods, 1_000.0);
        let a = net.admit_tenant(&tenant(1, vec![0, 1, 2]));
        assert_eq!(a.admitted, 3); // all three pairs distinct servers, same dc
        assert!(net.peak_utilization() > 0.0);
        assert_eq!(net.tenants_with_flows(), 1);
    }

    #[test]
    fn cross_datacenter_pairs_are_wan() {
        let (infra, pods) = setup();
        let mut net = NetworkModel::new(&infra, pods, 1_000.0);
        // Servers 0..4 are dc0, 4..8 dc1.
        let a = net.admit_tenant(&tenant(1, vec![0, 5]));
        assert_eq!(
            a,
            FlowAdmission {
                admitted: 0,
                denied: 0,
                wan_pairs: 1
            }
        );
        assert_eq!(net.peak_utilization(), 0.0);
    }

    #[test]
    fn release_frees_all_bandwidth() {
        let (infra, pods) = setup();
        let mut net = NetworkModel::new(&infra, pods, 2_000.0);
        net.admit_tenant(&tenant(1, vec![0, 1]));
        assert!(net.peak_utilization() > 0.0);
        net.release_tenant(TenantId(1));
        assert_eq!(net.peak_utilization(), 0.0);
        assert_eq!(net.tenants_with_flows(), 0);
    }

    #[test]
    fn congestion_denies_flows() {
        let (infra, pods) = setup();
        // Access links are 10 G; each pair takes 6 G.
        let mut net = NetworkModel::new(&infra, pods, 6_000.0);
        let a1 = net.admit_tenant(&tenant(1, vec![0, 1]));
        assert_eq!(a1.admitted, 1);
        // Second tenant between the same two servers: access link full.
        let a2 = net.admit_tenant(&tenant(2, vec![0, 1]));
        assert_eq!(a2.denied, 1);
    }

    #[test]
    fn readmit_moves_reservations() {
        let (infra, pods) = setup();
        let mut net = NetworkModel::new(&infra, pods, 1_000.0);
        let mut t = tenant(1, vec![0, 1]);
        net.admit_tenant(&t);
        let before = net.mean_utilization();
        // Migrate VM 1 onto VM 0's host: traffic disappears.
        t.placement[1] = ServerId(0);
        net.readmit_tenant(&t);
        assert_eq!(net.peak_utilization(), 0.0);
        assert!(before > 0.0);
    }

    #[test]
    #[should_panic(expected = "one pod per datacenter")]
    fn pod_count_must_match() {
        let (infra, mut pods) = setup();
        pods.pop();
        let _ = NetworkModel::new(&infra, pods, 1.0);
    }
}
