//! Per-tenant SLA accounting over time: the Eq. 23 downtime penalty is a
//! *flow* cost — the provider pays it every window the guarantee is
//! broken. This ledger accumulates it per tenant so operators can see who
//! is being hurt and what the violations cost cumulatively, and computes
//! the SLA credit owed (the monetised penalty, capped per window at the
//! tenant's `C^U_k` per resource as in the model).

use crate::tenant::{Tenant, TenantId};
use cpo_model::prelude::{Infrastructure, LoadTracker, RequestBatch, VmId};
use cpo_model::qos::worst_qos;
use std::collections::HashMap;

/// Cumulative SLA record of one tenant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlaRecord {
    /// Windows during which at least one resource ran below its
    /// guarantee.
    pub degraded_windows: u64,
    /// Total windows observed.
    pub observed_windows: u64,
    /// Accumulated monetised penalty (Σ per-window Eq. 23 terms).
    pub credit_owed: f64,
    /// Worst QoS ever experienced by any resource of the tenant.
    pub worst_qos_seen: f64,
}

impl Default for SlaRecord {
    /// A fresh record: nothing observed yet, so the worst QoS seen is the
    /// perfect 1.0.
    fn default() -> Self {
        Self {
            degraded_windows: 0,
            observed_windows: 0,
            credit_owed: 0.0,
            worst_qos_seen: 1.0,
        }
    }
}

impl SlaRecord {
    /// Fraction of observed windows with degraded service.
    pub fn degradation_ratio(&self) -> f64 {
        if self.observed_windows == 0 {
            0.0
        } else {
            self.degraded_windows as f64 / self.observed_windows as f64
        }
    }
}

/// The SLA ledger across all tenants.
#[derive(Clone, Debug, Default)]
pub struct SlaLedger {
    records: HashMap<TenantId, SlaRecord>,
}

impl SlaLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one window of the running platform: `batch`/`assignment`
    /// is the tenant snapshot ([`crate::sim::PlatformSim::snapshot`]
    /// layout: tenants in order, VMs contiguous). Returns the tenants
    /// whose guarantee was breached this window together with the credit
    /// accrued, so the caller can attribute SLA/QoS breaches to requests
    /// (flight-recorder `sla_violated` events).
    pub fn observe_window(
        &mut self,
        tenants: &[Tenant],
        batch: &RequestBatch,
        tracker: &LoadTracker,
        infra: &Infrastructure,
    ) -> Vec<(TenantId, f64)> {
        let mut breaches = Vec::new();
        let mut vm_base = 0usize;
        for t in tenants {
            let record = self.records.entry(t.id).or_default();
            record.observed_windows += 1;
            let mut window_credit = 0.0;
            let mut degraded = false;
            for (local, &server) in t.placement.iter().enumerate() {
                let q = worst_qos(tracker, server, infra);
                record.worst_qos_seen = record.worst_qos_seen.min(q);
                let spec = batch.vm(VmId(vm_base + local));
                if spec.qos_guarantee > 0.0 && q < spec.qos_guarantee {
                    degraded = true;
                    window_credit += spec.downtime_cost * (1.0 - q / spec.qos_guarantee);
                }
            }
            if degraded {
                record.degraded_windows += 1;
                record.credit_owed += window_credit;
                breaches.push((t.id, window_credit));
            }
            vm_base += t.vms.len();
        }
        breaches
    }

    /// Record of one tenant, if observed.
    pub fn record(&self, id: TenantId) -> Option<&SlaRecord> {
        self.records.get(&id)
    }

    /// Total credit owed across all tenants.
    pub fn total_credit(&self) -> f64 {
        self.records.values().map(|r| r.credit_owed).sum()
    }

    /// Tenants sorted by owed credit, highest first.
    pub fn worst_tenants(&self, count: usize) -> Vec<(TenantId, SlaRecord)> {
        let mut all: Vec<(TenantId, SlaRecord)> =
            self.records.iter().map(|(&id, &r)| (id, r)).collect();
        all.sort_by(|a, b| {
            b.1.credit_owed
                .partial_cmp(&a.1.credit_owed)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        all.truncate(count);
        all
    }

    /// Number of tenants ever observed.
    pub fn tenant_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::*;

    fn setup(cpu: f64, guarantee: f64) -> (Infrastructure, RequestBatch, Vec<Tenant>) {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(1))],
        );
        let mut spec = vm_spec(cpu, 1024.0, 10.0);
        spec.qos_guarantee = guarantee;
        spec.downtime_cost = 4.0;
        let mut batch = RequestBatch::new();
        batch.push_request(vec![spec.clone()], vec![]);
        let tenants = vec![Tenant {
            id: TenantId(1),
            vms: vec![spec],
            rules: vec![],
            placement: vec![ServerId(0)],
            remaining_windows: 5,
        }];
        (infra, batch, tenants)
    }

    fn observe(
        ledger: &mut SlaLedger,
        infra: &Infrastructure,
        batch: &RequestBatch,
        tenants: &[Tenant],
    ) {
        let mut assignment = Assignment::unassigned(batch.vm_count());
        let mut k = 0;
        for t in tenants {
            for &s in &t.placement {
                assignment.assign(VmId(k), s);
                k += 1;
            }
        }
        let tracker = LoadTracker::from_assignment(&assignment, batch, infra);
        ledger.observe_window(tenants, batch, &tracker, infra);
    }

    #[test]
    fn healthy_tenant_accrues_no_credit() {
        // Low load: QoS = 0.99 ≥ guarantee 0.95.
        let (infra, batch, tenants) = setup(1.0, 0.95);
        let mut ledger = SlaLedger::new();
        for _ in 0..3 {
            observe(&mut ledger, &infra, &batch, &tenants);
        }
        let r = ledger.record(TenantId(1)).unwrap();
        assert_eq!(r.observed_windows, 3);
        assert_eq!(r.degraded_windows, 0);
        assert_eq!(r.credit_owed, 0.0);
        assert_eq!(r.degradation_ratio(), 0.0);
    }

    #[test]
    fn overloaded_tenant_accrues_credit_every_window() {
        // 28 cpu of 28.8 effective → load 0.97 > knee 0.8 → QoS below 0.99
        // guarantee.
        let (infra, batch, tenants) = setup(28.0, 0.99);
        let mut ledger = SlaLedger::new();
        for _ in 0..4 {
            observe(&mut ledger, &infra, &batch, &tenants);
        }
        let r = ledger.record(TenantId(1)).unwrap();
        assert_eq!(r.degraded_windows, 4);
        assert!(r.credit_owed > 0.0);
        assert!(r.worst_qos_seen < 0.99);
        assert_eq!(r.degradation_ratio(), 1.0);
        assert!((ledger.total_credit() - r.credit_owed).abs() < 1e-12);
    }

    #[test]
    fn worst_tenants_sorted_by_credit() {
        let (infra, batch, tenants) = setup(28.0, 0.99);
        let mut ledger = SlaLedger::new();
        observe(&mut ledger, &infra, &batch, &tenants);
        // A second, healthy tenant observed via a different ledger entry.
        ledger.records.insert(TenantId(2), SlaRecord::default());
        let worst = ledger.worst_tenants(2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].0, TenantId(1));
        assert!(worst[0].1.credit_owed >= worst[1].1.credit_owed);
        assert_eq!(ledger.tenant_count(), 2);
    }
}
