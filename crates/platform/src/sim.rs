//! The cyclic time-window scheduler: "our idea is to directly include all
//! requests within a cyclic time window during the execution of the
//! allocation optimization process" (paper, Section III), with the
//! reconfiguration plan (Eq. 26) connecting consecutive windows.

use crate::accounting::{SimReport, WindowReport};
use crate::events::{Event, EventLog};
use crate::network::NetworkModel;
use crate::sla::SlaLedger;
use crate::tenant::{rebase_rules, Tenant, TenantId};
use cpo_core::prelude::Allocator;
use cpo_model::cost;
use cpo_model::prelude::*;
use cpo_scenario::request_gen::{generate_requests, RequestSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Arrival process per window (a fresh batch from this spec).
    pub arrivals: RequestSpec,
    /// Tenant lifetime range in windows, inclusive.
    pub lifetime: (u32, u32),
    /// Master seed (per-window batches derive from it).
    pub seed: u64,
    /// Per-window probability that one running server fails (the paper's
    /// future-work "platform failures" events). A failed server's VMs
    /// must be re-placed by the window's reconfiguration plan.
    pub server_failure_prob: f64,
    /// Windows a failed server stays offline before repair brings it back.
    pub repair_windows: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            arrivals: RequestSpec {
                total_vms: 12,
                ..Default::default()
            },
            lifetime: (3, 8),
            seed: 0,
            server_failure_prob: 0.0,
            repair_windows: 3,
        }
    }
}

/// The live platform: infrastructure + running tenants + event history.
pub struct PlatformSim {
    infra: Infrastructure,
    config: SimConfig,
    tenants: Vec<Tenant>,
    next_tenant: u64,
    window: u64,
    log: EventLog,
    rng: SmallRng,
    /// `offline_until[j]` — window index at which server `j` returns, or 0.
    offline_until: Vec<u64>,
    /// Optional east-west network model (spine-leaf pods).
    network: Option<NetworkModel>,
    /// Per-tenant SLA ledger (Eq. 23 accumulated over windows).
    sla: SlaLedger,
}

impl PlatformSim {
    /// Creates an idle platform.
    pub fn new(infra: Infrastructure, config: SimConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        let m = infra.server_count();
        Self {
            infra,
            config,
            tenants: Vec::new(),
            next_tenant: 0,
            window: 0,
            log: EventLog::new(),
            rng,
            offline_until: vec![0; m],
            network: None,
            sla: SlaLedger::new(),
        }
    }

    /// The per-tenant SLA ledger.
    pub fn sla(&self) -> &SlaLedger {
        &self.sla
    }

    /// Attaches a network model: one spine-leaf pod per datacenter plus a
    /// per-VM-pair bandwidth. Tenant flows are admitted on placement,
    /// re-routed on migration and released on departure.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = Some(network);
        self
    }

    /// The attached network model, if any.
    pub fn network(&self) -> Option<&NetworkModel> {
        self.network.as_ref()
    }

    /// Servers currently offline (failed, awaiting repair).
    pub fn offline_servers(&self) -> Vec<ServerId> {
        self.offline_until
            .iter()
            .enumerate()
            .filter_map(|(j, &until)| (until > self.window).then_some(ServerId(j)))
            .collect()
    }

    /// The infrastructure as the scheduler must see it this window:
    /// offline servers get zero capacity, forcing the optimiser to move
    /// their tenants and to place nothing new there.
    fn effective_infra(&self) -> Infrastructure {
        if self.offline_until.iter().all(|&u| u <= self.window) {
            return self.infra.clone();
        }
        let h = self.infra.attr_count();
        let dcs = self
            .infra
            .datacenters()
            .iter()
            .map(|dc| {
                let servers = dc
                    .servers()
                    .map(|j| {
                        let mut s = self.infra.server(j).clone();
                        if self.offline_until[j.index()] > self.window {
                            s.capacity = vec![0.0; h];
                        }
                        s
                    })
                    .collect();
                (dc.name.clone(), servers)
            })
            .collect();
        Infrastructure::new(self.infra.attrs().clone(), dcs)
    }

    /// Running tenants.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Current window index (number of completed windows).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The infrastructure.
    pub fn infra(&self) -> &Infrastructure {
        &self.infra
    }

    /// Builds the combined window problem: one request per running tenant
    /// (placed, in `previous`) followed by the new arrivals (unplaced).
    /// Returns the problem plus the number of running requests.
    fn build_window_problem(&self, arrivals: &RequestBatch) -> (AllocationProblem, usize) {
        let mut batch = RequestBatch::new();
        let mut previous_placements: Vec<Option<ServerId>> = Vec::new();
        for t in &self.tenants {
            let base = previous_placements.len();
            let rules = t
                .rules
                .iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(*kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(t.vms.clone(), rules);
            previous_placements.extend(t.placement.iter().map(|&s| Some(s)));
        }
        let running_requests = self.tenants.len();
        for req in arrivals.requests() {
            let base = previous_placements.len();
            let vms: Vec<VmSpec> = req.vms.iter().map(|&k| arrivals.vm(k).clone()).collect();
            let rules = rebase_rules(req)
                .into_iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(vms, rules);
            previous_placements.extend(std::iter::repeat_n(None, req.vms.len()));
        }
        let previous = Assignment::from_placements(previous_placements);
        (
            AllocationProblem::new(self.effective_infra(), batch, Some(previous)),
            running_requests,
        )
    }

    /// Runs one scheduling window with the given allocator.
    pub fn step(&mut self, allocator: &dyn Allocator) -> WindowReport {
        let window = self.window;

        // --- Failures: maybe take one healthy server down. ---
        if self.config.server_failure_prob > 0.0
            && self.rng.gen::<f64>() < self.config.server_failure_prob
        {
            let healthy: Vec<usize> = self
                .offline_until
                .iter()
                .enumerate()
                .filter_map(|(j, &u)| (u <= window).then_some(j))
                .collect();
            if !healthy.is_empty() {
                let j = healthy[self.rng.gen_range(0..healthy.len())];
                self.offline_until[j] = window + u64::from(self.config.repair_windows);
                self.log.push(Event::ServerFailed {
                    window,
                    server: ServerId(j),
                });
            }
        }

        for j in 0..self.offline_until.len() {
            if self.offline_until[j] == window && window > 0 {
                self.log.push(Event::ServerRepaired {
                    window,
                    server: ServerId(j),
                });
                self.offline_until[j] = 0;
            }
        }

        // --- Departures. ---
        let mut departing = Vec::new();
        for t in &mut self.tenants {
            t.remaining_windows = t.remaining_windows.saturating_sub(1);
            if t.remaining_windows == 0 {
                departing.push(t.id);
            }
        }
        for id in &departing {
            self.log.push(Event::TenantDeparted {
                window,
                tenant: *id,
            });
            if let Some(net) = &mut self.network {
                net.release_tenant(*id);
            }
        }
        self.tenants.retain(|t| t.remaining_windows > 0);

        // --- Arrivals. ---
        let arrivals = generate_requests(
            &self.config.arrivals,
            self.config.seed ^ (window.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let arrival_tenant_ids: Vec<TenantId> = (0..arrivals.request_count())
            .map(|i| TenantId(self.next_tenant + i as u64))
            .collect();
        for (req, &tid) in arrivals.requests().iter().zip(&arrival_tenant_ids) {
            self.log.push(Event::RequestArrived {
                window,
                tenant: tid,
                vms: req.vms.len(),
            });
        }
        self.next_tenant += arrivals.request_count() as u64;

        // --- Solve the window. ---
        let (problem, running_requests) = self.build_window_problem(&arrivals);
        let solve_start = Instant::now();
        let outcome = allocator.allocate(&problem);
        let solve_time = solve_start.elapsed();
        let accepted = problem.accepted_requests(&outcome.assignment);

        // --- Apply to running tenants (never evicted: a tenant whose
        //     request the allocator failed keeps its old placement). ---
        let mut migrations = 0usize;
        let mut migration_cost = 0.0;
        let mut denied_flows = 0usize;
        let mut vm_base = 0usize;
        let mut moved_tenants: Vec<usize> = Vec::new();
        for (idx, t) in self.tenants.iter_mut().enumerate() {
            let req_id = RequestId(idx);
            let n = t.vms.len();
            if accepted.contains(&req_id) {
                let mut moved = false;
                for local in 0..n {
                    let k = VmId(vm_base + local);
                    let new_server = outcome.assignment.server_of(k).expect("accepted ⇒ placed");
                    let old_server = t.placement[local];
                    if new_server != old_server {
                        migrations += 1;
                        migration_cost += t.vms[local].migration_cost;
                        self.log.push(Event::VmMigrated {
                            window,
                            tenant: t.id,
                            vm: local,
                            from: old_server,
                            to: new_server,
                        });
                        t.placement[local] = new_server;
                        moved = true;
                    }
                }
                if moved {
                    moved_tenants.push(idx);
                }
            }
            vm_base += n;
        }
        if let Some(net) = &mut self.network {
            for &idx in &moved_tenants {
                denied_flows += net.readmit_tenant(&self.tenants[idx]).denied;
            }
        }

        // --- Admit / reject arrivals. ---
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        for (i, req) in arrivals.requests().iter().enumerate() {
            let req_id = RequestId(running_requests + i);
            let tid = arrival_tenant_ids[i];
            if accepted.contains(&req_id) {
                // Global VM ids of this request within the window problem.
                let first = problem
                    .batch()
                    .request(req_id)
                    .vms
                    .first()
                    .copied()
                    .expect("non-empty request");
                let placement: Vec<ServerId> = (0..req.vms.len())
                    .map(|l| {
                        outcome
                            .assignment
                            .server_of(VmId(first.index() + l))
                            .expect("accepted ⇒ placed")
                    })
                    .collect();
                let lifetime = self
                    .rng
                    .gen_range(self.config.lifetime.0..=self.config.lifetime.1);
                self.tenants.push(Tenant {
                    id: tid,
                    vms: req.vms.iter().map(|&k| arrivals.vm(k).clone()).collect(),
                    rules: rebase_rules(req),
                    placement,
                    remaining_windows: lifetime.max(1),
                });
                if let Some(net) = &mut self.network {
                    denied_flows += net
                        .admit_tenant(self.tenants.last().expect("just pushed"))
                        .denied;
                }
                self.log.push(Event::TenantAdmitted {
                    window,
                    tenant: tid,
                });
                admitted += 1;
            } else {
                self.log.push(Event::RequestRejected {
                    window,
                    tenant: tid,
                });
                rejected += 1;
            }
        }

        // --- Post-window accounting on the real platform state. ---
        let (state_batch, state_assignment) = self.snapshot();
        let tracker = LoadTracker::from_assignment(&state_assignment, &state_batch, &self.infra);
        if state_batch.vm_count() > 0 {
            self.sla
                .observe_window(&self.tenants, &state_batch, &tracker, &self.infra);
        }
        let provider_cost = cost::usage_opex_cost(&tracker, &self.infra);
        let downtime_cost =
            cost::downtime_cost(&state_assignment, &tracker, &state_batch, &self.infra);
        let offline = self.offline_servers();
        let stranded_vms = self
            .tenants
            .iter()
            .flat_map(|t| t.placement.iter())
            .filter(|j| offline.contains(j))
            .count();
        let report = WindowReport {
            window,
            arrivals: arrivals.request_count(),
            admitted,
            rejected,
            migrations,
            migration_cost,
            provider_cost,
            downtime_cost,
            running_tenants: self.tenants.len(),
            running_vms: self.tenants.iter().map(Tenant::size).sum(),
            active_servers: tracker.active_servers(),
            offline_servers: offline.len(),
            stranded_vms,
            fabric_peak_utilization: self
                .network
                .as_ref()
                .map_or(0.0, NetworkModel::peak_utilization),
            denied_flows,
            solve_time,
        };
        self.log.push(Event::WindowClosed {
            window,
            running_tenants: self.tenants.len(),
            active_servers: tracker.active_servers(),
        });
        self.window += 1;
        report
    }

    /// Runs `windows` scheduling windows, returning the aggregate report.
    pub fn run(&mut self, allocator: &dyn Allocator, windows: u64) -> SimReport {
        let mut report = SimReport::default();
        for _ in 0..windows {
            report.windows.push(self.step(allocator));
        }
        report
    }

    /// Snapshot of the running platform as (batch, assignment) — the state
    /// the accounting evaluates.
    pub fn snapshot(&self) -> (RequestBatch, Assignment) {
        let mut batch = RequestBatch::new();
        let mut placements = Vec::new();
        for t in &self.tenants {
            let base = placements.len();
            let rules = t
                .rules
                .iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(*kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(t.vms.clone(), rules);
            placements.extend(t.placement.iter().map(|&s| Some(s)));
        }
        (batch, Assignment::from_placements(placements))
    }

    /// Consistency check: the running platform state never violates
    /// capacity or the tenants' own rules. Returns the violation report.
    pub fn verify_state(&self) -> cpo_model::constraints::ViolationReport {
        let (batch, assignment) = self.snapshot();
        cpo_model::constraints::check(&assignment, &batch, &self.infra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;

    fn sim(servers: usize, vms_per_window: usize) -> PlatformSim {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: vms_per_window,
                ..Default::default()
            },
            lifetime: (2, 4),
            seed: 11,
            ..Default::default()
        };
        PlatformSim::new(infra, config)
    }

    #[test]
    fn single_window_admits_and_accounts() {
        let mut sim = sim(8, 6);
        let report = sim.step(&RoundRobinAllocator);
        assert_eq!(report.window, 0);
        assert!(report.arrivals >= 2);
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert!(report.running_tenants == report.admitted);
        assert!(report.provider_cost > 0.0 || report.admitted == 0);
        assert!(sim.verify_state().is_feasible(), "{:?}", sim.verify_state());
    }

    #[test]
    fn tenants_depart_after_lifetime() {
        let mut sim = sim(8, 4);
        let mut max_running = 0usize;
        for _ in 0..12 {
            let r = sim.step(&RoundRobinAllocator);
            max_running = max_running.max(r.running_tenants);
        }
        // Lifetimes are 2–4 windows: the population must plateau, not grow
        // linearly with 12 windows of arrivals.
        let departures = sim
            .log()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::TenantDeparted { .. }))
            .count();
        assert!(departures > 0, "tenants must depart");
        assert!(
            max_running < 40,
            "population must plateau, got {max_running}"
        );
    }

    #[test]
    fn state_stays_feasible_over_many_windows() {
        let mut sim = sim(6, 8);
        for _ in 0..10 {
            sim.step(&RoundRobinAllocator);
            let report = sim.verify_state();
            assert!(report.is_feasible(), "window {}: {report:?}", sim.window());
        }
    }

    #[test]
    fn run_aggregates_windows() {
        let mut sim = sim(8, 5);
        let report = sim.run(&RoundRobinAllocator, 5);
        assert_eq!(report.windows.len(), 5);
        assert_eq!(
            report.total_arrivals(),
            report.windows.iter().map(|w| w.arrivals).sum::<usize>()
        );
        assert!(report.rejection_rate() <= 1.0);
    }

    #[test]
    fn saturated_platform_rejects() {
        // Tiny platform, heavy arrivals: rejections must appear.
        let mut sim = sim(1, 30);
        let report = sim.run(&RoundRobinAllocator, 3);
        assert!(report.total_rejected() > 0);
        assert!(sim.verify_state().is_feasible());
    }

    #[test]
    fn event_log_is_consistent_with_reports() {
        let mut sim = sim(6, 6);
        let report = sim.run(&RoundRobinAllocator, 4);
        assert_eq!(sim.log().rejection_count(), report.total_rejected());
        assert_eq!(sim.log().migration_count(), report.total_migrations());
    }

    #[test]
    fn server_failures_strand_or_migrate_vms() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: 6,
                ..Default::default()
            },
            lifetime: (5, 8),
            seed: 3,
            server_failure_prob: 1.0, // one failure per window, guaranteed
            repair_windows: 2,
        };
        let mut sim = PlatformSim::new(infra, config);
        let mut saw_offline = false;
        for _ in 0..6 {
            let r = sim.step(&cpo_core::prelude::CpAllocator::default());
            saw_offline |= r.offline_servers > 0;
            // Stranded VMs are possible but must never exceed running VMs.
            assert!(r.stranded_vms <= r.running_vms);
        }
        assert!(
            sim.log().failure_count() > 0,
            "forced failures must be logged"
        );
        assert!(saw_offline, "offline servers must appear in reports");
        // Repairs must also be logged once the repair window elapses.
        let repaired = sim
            .log()
            .events()
            .iter()
            .any(|e| matches!(e, Event::ServerRepaired { .. }));
        assert!(repaired, "servers must come back after repair_windows");
    }

    #[test]
    fn failed_server_receives_no_new_vms() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(3))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: 6,
                ..Default::default()
            },
            lifetime: (8, 8),
            seed: 1,
            server_failure_prob: 1.0,
            repair_windows: 10, // stays down for the whole test
        };
        let mut sim = PlatformSim::new(infra, config);
        for step in 0..4u64 {
            let before_count = sim.tenants().len();
            sim.step(&cpo_core::prelude::CpAllocator::default());
            let offline = sim.offline_servers();
            // Tenants admitted *this* window must avoid the servers that
            // were offline during the window.
            for t in sim.tenants().iter().skip(before_count) {
                for j in &t.placement {
                    assert!(
                        !offline.contains(j),
                        "window {step}: new tenant {:?} placed on offline {j:?}",
                        t.id
                    );
                }
            }
        }
        assert!(sim.log().failure_count() >= 1);
    }

    #[test]
    fn sla_ledger_tracks_tenants_over_windows() {
        let mut sim = sim(8, 6);
        sim.run(&RoundRobinAllocator, 4);
        let ledger = sim.sla();
        // Every still-running tenant has been observed at least once.
        for t in sim.tenants() {
            let r = ledger.record(t.id).expect("running tenant observed");
            assert!(r.observed_windows >= 1);
            assert!(r.worst_qos_seen <= 1.0);
        }
        assert!(ledger.total_credit() >= 0.0);
    }

    #[test]
    fn networked_sim_accounts_fabric_utilisation() {
        use cpo_topology::{build_spine_leaf, SpineLeafSpec};
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(6))],
        );
        let pods = vec![build_spine_leaf(&SpineLeafSpec::for_server_count(6))];
        let net = crate::network::NetworkModel::new(&infra, pods, 500.0);
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: 9,
                request_size: (2, 3), // multi-VM tenants create traffic
                ..Default::default()
            },
            lifetime: (3, 5),
            seed: 21,
            ..Default::default()
        };
        let mut sim = PlatformSim::new(infra, config).with_network(net);
        let mut saw_traffic = false;
        for _ in 0..6 {
            let r = sim.step(&cpo_core::prelude::RoundRobinAllocator);
            saw_traffic |= r.fabric_peak_utilization > 0.0;
            assert!(r.fabric_peak_utilization <= 1.0);
        }
        assert!(
            saw_traffic,
            "multi-VM tenants spread by round-robin must use the fabric"
        );
        // Flows must not leak: utilisation is bounded by live tenants.
        let live_pairs: usize = sim
            .tenants()
            .iter()
            .map(|t| t.size() * t.size().saturating_sub(1) / 2)
            .sum();
        if live_pairs == 0 {
            assert_eq!(sim.network().unwrap().peak_utilization(), 0.0);
        }
    }

    #[test]
    fn windows_are_deterministic_per_seed() {
        let mut a = sim(6, 6);
        let mut b = sim(6, 6);
        let ra = a.run(&RoundRobinAllocator, 4);
        let rb = b.run(&RoundRobinAllocator, 4);
        for (x, y) in ra.windows.iter().zip(&rb.windows) {
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.migrations, y.migrations);
        }
    }
}
