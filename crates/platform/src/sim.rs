//! The cyclic time-window scheduler: "our idea is to directly include all
//! requests within a cyclic time window during the execution of the
//! allocation optimization process" (paper, Section III), with the
//! reconfiguration plan (Eq. 26) connecting consecutive windows.
//!
//! The window mechanics live in [`crate::executor::WindowExecutor`];
//! [`PlatformSim`] sequences them as the classic fixed-step loop. An
//! event-driven driver (the `cpo-des` crate) sequences the same executor
//! from a continuous-time event queue.

use crate::accounting::{SimReport, WindowReport};
use crate::events::EventLog;
pub use crate::executor::SimConfig;
use crate::executor::{LifetimePolicy, WindowExecutor};
use crate::network::NetworkModel;
use crate::sla::SlaLedger;
use crate::tenant::Tenant;
use cpo_core::prelude::Allocator;
use cpo_model::prelude::*;

/// The live platform: infrastructure + running tenants + event history.
pub struct PlatformSim {
    exec: WindowExecutor,
}

impl PlatformSim {
    /// Creates an idle platform.
    pub fn new(infra: Infrastructure, config: SimConfig) -> Self {
        Self {
            exec: WindowExecutor::new(infra, config),
        }
    }

    /// The per-tenant SLA ledger.
    pub fn sla(&self) -> &SlaLedger {
        self.exec.sla()
    }

    /// Attaches a network model: one spine-leaf pod per datacenter plus a
    /// per-VM-pair bandwidth. Tenant flows are admitted on placement,
    /// re-routed on migration and released on departure.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.exec.set_network(network);
        self
    }

    /// The attached network model, if any.
    pub fn network(&self) -> Option<&NetworkModel> {
        self.exec.network()
    }

    /// Servers currently offline (failed, awaiting repair).
    pub fn offline_servers(&self) -> Vec<ServerId> {
        self.exec.offline_servers()
    }

    /// Running tenants.
    pub fn tenants(&self) -> &[Tenant] {
        self.exec.tenants()
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        self.exec.log()
    }

    /// Current window index (number of completed windows).
    pub fn window(&self) -> u64 {
        self.exec.window()
    }

    /// The infrastructure.
    pub fn infra(&self) -> &Infrastructure {
        self.exec.infra()
    }

    /// The underlying window executor (for drivers that need phase-level
    /// control; `step` is the fixed-step composition of its phases).
    pub fn executor(&self) -> &WindowExecutor {
        &self.exec
    }

    /// Runs one scheduling window with the given allocator: failures →
    /// repairs → departures → generated arrivals → solve/apply/admit.
    pub fn step(&mut self, allocator: &dyn Allocator) -> WindowReport {
        self.exec.inject_failures();
        self.exec.tick_departures();
        let (arrivals, ids) = self.exec.generate_window_arrivals();
        self.exec
            .execute(allocator, &arrivals, &ids, LifetimePolicy::DrawnWindows)
            .0
    }

    /// Runs `windows` scheduling windows, returning the aggregate report.
    pub fn run(&mut self, allocator: &dyn Allocator, windows: u64) -> SimReport {
        let mut report = SimReport::default();
        for _ in 0..windows {
            report.windows.push(self.step(allocator));
        }
        report
    }

    /// Snapshot of the running platform as (batch, assignment) — the state
    /// the accounting evaluates.
    pub fn snapshot(&self) -> (RequestBatch, Assignment) {
        self.exec.snapshot()
    }

    /// Consistency check: the running platform state never violates
    /// capacity or the tenants' own rules. Returns the violation report.
    pub fn verify_state(&self) -> cpo_model::constraints::ViolationReport {
        self.exec.verify_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;
    use cpo_scenario::request_gen::RequestSpec;

    fn sim(servers: usize, vms_per_window: usize) -> PlatformSim {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: vms_per_window,
                ..Default::default()
            },
            lifetime: (2, 4),
            seed: 11,
            ..Default::default()
        };
        PlatformSim::new(infra, config)
    }

    #[test]
    fn single_window_admits_and_accounts() {
        let mut sim = sim(8, 6);
        let report = sim.step(&RoundRobinAllocator);
        assert_eq!(report.window, 0);
        assert!(report.arrivals >= 2);
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert!(report.running_tenants == report.admitted);
        assert!(report.provider_cost > 0.0 || report.admitted == 0);
        assert!(sim.verify_state().is_feasible(), "{:?}", sim.verify_state());
    }

    #[test]
    fn tenants_depart_after_lifetime() {
        let mut sim = sim(8, 4);
        let mut max_running = 0usize;
        for _ in 0..12 {
            let r = sim.step(&RoundRobinAllocator);
            max_running = max_running.max(r.running_tenants);
        }
        // Lifetimes are 2–4 windows: the population must plateau, not grow
        // linearly with 12 windows of arrivals.
        let departures = sim
            .log()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::TenantDeparted { .. }))
            .count();
        assert!(departures > 0, "tenants must depart");
        assert!(
            max_running < 40,
            "population must plateau, got {max_running}"
        );
    }

    #[test]
    fn state_stays_feasible_over_many_windows() {
        let mut sim = sim(6, 8);
        for _ in 0..10 {
            sim.step(&RoundRobinAllocator);
            let report = sim.verify_state();
            assert!(report.is_feasible(), "window {}: {report:?}", sim.window());
        }
    }

    #[test]
    fn run_aggregates_windows() {
        let mut sim = sim(8, 5);
        let report = sim.run(&RoundRobinAllocator, 5);
        assert_eq!(report.windows.len(), 5);
        assert_eq!(
            report.total_arrivals(),
            report.windows.iter().map(|w| w.arrivals).sum::<usize>()
        );
        assert!(report.rejection_rate() <= 1.0);
    }

    #[test]
    fn saturated_platform_rejects() {
        // Tiny platform, heavy arrivals: rejections must appear.
        let mut sim = sim(1, 30);
        let report = sim.run(&RoundRobinAllocator, 3);
        assert!(report.total_rejected() > 0);
        assert!(sim.verify_state().is_feasible());
    }

    #[test]
    fn event_log_is_consistent_with_reports() {
        let mut sim = sim(6, 6);
        let report = sim.run(&RoundRobinAllocator, 4);
        assert_eq!(sim.log().rejection_count(), report.total_rejected());
        assert_eq!(sim.log().migration_count(), report.total_migrations());
    }

    #[test]
    fn server_failures_strand_or_migrate_vms() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: 6,
                ..Default::default()
            },
            lifetime: (5, 8),
            seed: 3,
            server_failure_prob: 1.0, // one failure per window, guaranteed
            repair_windows: 2,
        };
        let mut sim = PlatformSim::new(infra, config);
        let mut saw_offline = false;
        for _ in 0..6 {
            let r = sim.step(&cpo_core::prelude::CpAllocator::default());
            saw_offline |= r.offline_servers > 0;
            // Stranded VMs are possible but must never exceed running VMs.
            assert!(r.stranded_vms <= r.running_vms);
        }
        assert!(
            sim.log().failure_count() > 0,
            "forced failures must be logged"
        );
        assert!(saw_offline, "offline servers must appear in reports");
        // Repairs must also be logged once the repair window elapses.
        let repaired = sim
            .log()
            .events()
            .iter()
            .any(|e| matches!(e, Event::ServerRepaired { .. }));
        assert!(repaired, "servers must come back after repair_windows");
    }

    #[test]
    fn failed_server_receives_no_new_vms() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(3))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: 6,
                ..Default::default()
            },
            lifetime: (8, 8),
            seed: 1,
            server_failure_prob: 1.0,
            repair_windows: 10, // stays down for the whole test
        };
        let mut sim = PlatformSim::new(infra, config);
        for step in 0..4u64 {
            let before_count = sim.tenants().len();
            sim.step(&cpo_core::prelude::CpAllocator::default());
            let offline = sim.offline_servers();
            // Tenants admitted *this* window must avoid the servers that
            // were offline during the window.
            for t in sim.tenants().iter().skip(before_count) {
                for j in &t.placement {
                    assert!(
                        !offline.contains(j),
                        "window {step}: new tenant {:?} placed on offline {j:?}",
                        t.id
                    );
                }
            }
        }
        assert!(sim.log().failure_count() >= 1);
    }

    #[test]
    fn sla_ledger_tracks_tenants_over_windows() {
        let mut sim = sim(8, 6);
        sim.run(&RoundRobinAllocator, 4);
        let ledger = sim.sla();
        // Every still-running tenant has been observed at least once.
        for t in sim.tenants() {
            let r = ledger.record(t.id).expect("running tenant observed");
            assert!(r.observed_windows >= 1);
            assert!(r.worst_qos_seen <= 1.0);
        }
        assert!(ledger.total_credit() >= 0.0);
    }

    #[test]
    fn networked_sim_accounts_fabric_utilisation() {
        use cpo_topology::{build_spine_leaf, SpineLeafSpec};
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(6))],
        );
        let pods = vec![build_spine_leaf(&SpineLeafSpec::for_server_count(6))];
        let net = crate::network::NetworkModel::new(&infra, pods, 500.0);
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: 9,
                request_size: (2, 3), // multi-VM tenants create traffic
                ..Default::default()
            },
            lifetime: (3, 5),
            seed: 21,
            ..Default::default()
        };
        let mut sim = PlatformSim::new(infra, config).with_network(net);
        let mut saw_traffic = false;
        for _ in 0..6 {
            let r = sim.step(&cpo_core::prelude::RoundRobinAllocator);
            saw_traffic |= r.fabric_peak_utilization > 0.0;
            assert!(r.fabric_peak_utilization <= 1.0);
        }
        assert!(
            saw_traffic,
            "multi-VM tenants spread by round-robin must use the fabric"
        );
        // Flows must not leak: utilisation is bounded by live tenants.
        let live_pairs: usize = sim
            .tenants()
            .iter()
            .map(|t| t.size() * t.size().saturating_sub(1) / 2)
            .sum();
        if live_pairs == 0 {
            assert_eq!(sim.network().unwrap().peak_utilization(), 0.0);
        }
    }

    #[test]
    fn windows_are_deterministic_per_seed() {
        let mut a = sim(6, 6);
        let mut b = sim(6, 6);
        let ra = a.run(&RoundRobinAllocator, 4);
        let rb = b.run(&RoundRobinAllocator, 4);
        for (x, y) in ra.windows.iter().zip(&rb.windows) {
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.migrations, y.migrations);
        }
    }
}
