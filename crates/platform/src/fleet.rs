//! Memory-lean fleet executor for production-scale trace replay.
//!
//! [`crate::executor::WindowExecutor`] re-materialises the *entire*
//! resident platform into each window's problem (every running tenant
//! becomes a movable request) and keeps a boxed `VmSpec` per VM plus an
//! append-only event log. That is the right engine for paper-scale
//! reconfiguration studies; at trace scale — tens of thousands of
//! servers, hundreds of thousands of resident VMs, millions of arrivals
//! — both the per-window problem and the per-VM footprint are ruinous.
//!
//! [`FleetExecutor`] is the streaming counterpart:
//!
//! * **admission-only** — each window's problem contains just the new
//!   arrivals, packed against a *residual* infrastructure whose capacity
//!   rows are the live headroom (effective capacity minus resident
//!   load). Resident VMs are never re-placed, so `migrations`,
//!   `migration_cost` and `downtime_cost` are structurally zero in its
//!   reports;
//! * **packed state** — resident VMs live in a
//!   [`cpo_model::fleet::VmTable`] (flat slot-recycled rows, intrusive
//!   per-tenant chains) and per-server loads in a
//!   [`cpo_model::fleet::ServerLoadTable`], maintained incrementally in
//!   O(h) per admit/depart;
//! * **no event log** — the flight recorder (bounded ring) is the only
//!   observability channel, with the same lifecycle events and ordering
//!   as `WindowExecutor`: `admitted` (binding key↔tenant) precedes the
//!   per-VM `placed` events.
//!
//! Provider cost is maintained incrementally: a server's opex enters the
//! sum when it transitions idle→active and leaves at active→idle; each
//! hosted VM contributes the server's usage cost.

use crate::accounting::WindowReport;
use crate::store::PlacementStore;
use crate::tenant::TenantId;
use cpo_core::prelude::Allocator;
use cpo_model::fleet::{ServerLoadTable, VmTable, NO_SLOT};
use cpo_model::prelude::*;
use cpo_obs::flight::{self, FlightKind};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Streaming admission-only window executor over packed fleet tables.
pub struct FleetExecutor {
    infra: Infrastructure,
    /// Live headroom behind the optimistic-commit store: effective
    /// capacity minus resident load (zeroed for offline servers). Shared
    /// with scheduler shards via [`Arc`]; the native path goes through
    /// [`PlacementStore::reserve`]/[`PlacementStore::release`].
    store: Arc<PlacementStore>,
    vms: VmTable,
    loads: ServerLoadTable,
    /// Tenant → head slot of its VM chain.
    heads: HashMap<u64, u32>,
    /// Tenant → flight-recorder correlation key.
    flight_keys: HashMap<u64, u64>,
    next_tenant: u64,
    window: u64,
    offline: Vec<bool>,
    /// Incremental Σ_active (opex + usage_cost × hosted).
    provider_cost: f64,
}

impl FleetExecutor {
    /// An idle fleet over `infra`.
    pub fn new(infra: Infrastructure) -> Self {
        let m = infra.server_count();
        let h = infra.attr_count();
        let store = Arc::new(PlacementStore::new(&infra));
        Self {
            infra,
            store,
            vms: VmTable::new(h),
            loads: ServerLoadTable::new(m, h),
            heads: HashMap::new(),
            flight_keys: HashMap::new(),
            next_tenant: 0,
            window: 0,
            offline: vec![false; m],
            provider_cost: 0.0,
        }
    }

    /// The real substrate.
    pub fn infra(&self) -> &Infrastructure {
        &self.infra
    }

    /// The shared placement store holding the live residual headroom the
    /// allocator packs against.
    pub fn store(&self) -> &Arc<PlacementStore> {
        &self.store
    }

    /// Current residual-headroom row of server `j` (convenience over
    /// [`Self::store`]).
    pub fn residual_row(&self, j: ServerId) -> Vec<f64> {
        self.store.residual_row(j)
    }

    /// Resident VMs.
    pub fn live_vms(&self) -> usize {
        self.vms.live()
    }

    /// Resident tenants (requests).
    pub fn resident_requests(&self) -> usize {
        self.heads.len()
    }

    /// Number of servers `m`.
    pub fn server_count(&self) -> usize {
        self.infra.server_count()
    }

    /// Completed windows.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Assigns sequential tenant ids to an arrival batch (one per
    /// request), mirroring `WindowExecutor::register_arrivals` minus the
    /// event log.
    pub fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        let ids: Vec<TenantId> = (0..arrivals.request_count())
            .map(|i| TenantId(self.next_tenant + i as u64))
            .collect();
        self.next_tenant += arrivals.request_count() as u64;
        ids
    }

    /// Associates registered tenant ids with flight correlation keys
    /// (entries with the [`flight::NONE`] sentinel are skipped).
    pub fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        for (&id, &key) in ids.iter().zip(keys) {
            if key != flight::NONE {
                self.flight_keys.insert(id.0, key);
            }
        }
    }

    pub(crate) fn flight_key(&self, tenant: u64) -> u64 {
        self.flight_keys
            .get(&tenant)
            .copied()
            .unwrap_or(flight::NONE)
    }

    /// Solves one admission-only window: packs `arrivals` against the
    /// residual headroom, admits the accepted requests into the packed
    /// tables and rejects the rest. Returns the report plus admitted
    /// tenant ids in arrival order.
    pub fn execute_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        arrival_tenant_ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        let window = self.window;
        let mut sp = cpo_obs::span!("fleet.window", window = window);
        let problem = AllocationProblem::new(self.store.residual_clone(), arrivals.clone(), None);
        let prof_on = cpo_obs::prof::is_enabled();
        let solve_start_us = if prof_on { cpo_obs::now_us() } else { 0 };
        let solve_start = Instant::now();
        let outcome = allocator.allocate(&problem);
        let solve_time = solve_start.elapsed();
        if prof_on {
            cpo_obs::prof::solve_phase(
                window,
                0,
                solve_start_us,
                cpo_obs::now_us(),
                &[solve_time.as_micros() as u64],
            );
        }
        let accepted = problem.accepted_requests(&outcome.assignment);

        let mut admitted = 0usize;
        let mut rejected = 0usize;
        let mut admitted_ids = Vec::new();
        for (i, req) in arrivals.requests().iter().enumerate() {
            let tid = arrival_tenant_ids[i];
            if accepted.contains(&RequestId(i)) {
                self.admit_request(
                    tid,
                    window,
                    arrivals,
                    req,
                    |k| {
                        outcome
                            .assignment
                            .server_of(k)
                            .expect("accepted ⇒ placed")
                            .index() as u32
                    },
                    true,
                );
                admitted += 1;
                admitted_ids.push(tid);
            } else {
                self.reject_request(tid, window);
                rejected += 1;
            }
        }

        let report = self.finish_window(arrivals.request_count(), admitted, rejected, solve_time);
        sp.field("admitted", admitted).field("rejected", rejected);
        (report, admitted_ids)
    }

    /// Admits one accepted request into the packed tables: the
    /// `admitted` flight event binds key↔tenant, then each VM is
    /// inserted in order (per-VM `placed` events), matching
    /// `WindowExecutor`'s event order. When `reserve` is set the
    /// residual store is charged per VM (the native path); the sharded
    /// path passes `false` because its optimistic commit has already
    /// reserved the capacity.
    pub(crate) fn admit_request(
        &mut self,
        tid: TenantId,
        window: u64,
        arrivals: &RequestBatch,
        req: &Request,
        server_of: impl Fn(VmId) -> u32,
        reserve: bool,
    ) {
        let key = self.flight_key(tid.0);
        if flight::is_enabled() {
            flight::record(
                FlightKind::Admitted,
                key,
                tid.0,
                window,
                req.vms.len() as u64,
            );
        }
        let mut head = NO_SLOT;
        for (local, &k) in req.vms.iter().enumerate() {
            let j = server_of(k);
            let vm = arrivals.vm(k);
            head = self.vms.insert(tid.0, j, &vm.demand, vm.revenue, head);
            self.admit_load(j, &vm.demand, reserve);
            if flight::is_enabled() {
                flight::record(FlightKind::Placed, key, tid.0, j as u64, local as u64);
            }
        }
        self.heads.insert(tid.0, head);
    }

    /// Rejects one request: `rejected` flight event, correlation key
    /// dropped.
    pub(crate) fn reject_request(&mut self, tid: TenantId, window: u64) {
        flight::record(
            FlightKind::Rejected,
            self.flight_key(tid.0),
            tid.0,
            window,
            0,
        );
        self.flight_keys.remove(&tid.0);
    }

    /// Post-admission window close shared by the native and sharded
    /// paths: capacity monitor, report, `window_closed` flight event,
    /// fleet probe, gauges; advances the window counter.
    pub(crate) fn finish_window(
        &mut self,
        arrivals: usize,
        admitted: usize,
        rejected: usize,
        solve_time: Duration,
    ) -> WindowReport {
        let window = self.window;
        // Online capacity monitor over the packed state (cheap: O(m·h)).
        if flight::is_enabled() {
            for v in self.capacity_violations() {
                cpo_core::monitor::record_violation("fleet", &v);
            }
        }

        let stranded_vms: usize = self
            .offline
            .iter()
            .enumerate()
            .filter(|&(_, &down)| down)
            .map(|(j, _)| self.loads.hosted(j as u32) as usize)
            .sum();
        let report = WindowReport {
            window,
            arrivals,
            admitted,
            rejected,
            migrations: 0,
            migration_cost: 0.0,
            provider_cost: self.provider_cost,
            downtime_cost: 0.0,
            running_tenants: self.heads.len(),
            running_vms: self.vms.live(),
            active_servers: self.loads.active_servers(),
            offline_servers: self.offline.iter().filter(|&&d| d).count(),
            stranded_vms,
            fabric_peak_utilization: 0.0,
            denied_flows: 0,
            solve_time,
        };
        flight::record(
            FlightKind::WindowClosed,
            flight::NONE,
            flight::NONE,
            window,
            self.heads.len() as u64,
        );
        crate::probe::emit(
            &self.infra,
            (0..self.offline.len()).filter(|&j| !self.offline[j]),
            |j| self.loads.used(j as u32),
            crate::probe::ProbeStats {
                window,
                arrivals: report.arrivals,
                admitted,
                active_vms: report.running_vms,
                active_servers: report.active_servers,
                solve_latency_us: solve_time.as_micros() as u64,
            },
        );
        cpo_obs::record_value("fleet.solve_ns", solve_time.as_nanos() as u64);
        cpo_obs::gauge_set("fleet.running_vms", self.vms.live() as f64);
        cpo_obs::gauge_set("fleet.active_servers", self.loads.active_servers() as f64);
        self.window += 1;
        report
    }

    /// Accounts one admitted VM onto server `j`: load, incremental
    /// provider cost and — when `reserve` is set — the residual store.
    fn admit_load(&mut self, j: u32, demand: &[f64], reserve: bool) {
        let server = &self.infra.servers()[j as usize];
        if self.loads.add(j, demand) {
            self.provider_cost += server.opex;
        }
        self.provider_cost += server.usage_cost;
        if reserve {
            self.store.reserve(ServerId(j as usize), demand);
        }
    }

    /// Departs one tenant, walking its chain and returning every VM's
    /// demand to the residual headroom (unless the hosting server is
    /// offline — a failed server has no headroom to return to). Returns
    /// `false` when the tenant is not resident (e.g. it was rejected).
    pub fn depart_tenant(&mut self, id: TenantId) -> bool {
        let Some(head) = self.heads.remove(&id.0) else {
            return false;
        };
        let mut slot = head;
        while slot != NO_SLOT {
            let next = self.vms.next(slot);
            let j = self.vms.server(slot);
            let demand: Vec<f64> = self.vms.demand(slot).to_vec();
            let server = &self.infra.servers()[j as usize];
            if self.loads.remove(j, &demand) {
                self.provider_cost -= server.opex;
            }
            self.provider_cost -= server.usage_cost;
            self.store.release(ServerId(j as usize), &demand);
            self.vms.remove(slot);
            slot = next;
        }
        flight::record(
            FlightKind::Departed,
            self.flight_key(id.0),
            id.0,
            self.window,
            0,
        );
        self.flight_keys.remove(&id.0);
        true
    }

    /// Fails one server: its residual headroom drops to zero so nothing
    /// new lands there. Resident VMs stay (counted as stranded). No-op
    /// returning `false` when already offline.
    pub fn force_failure(&mut self, server: ServerId) -> bool {
        let j = server.index();
        if self.offline[j] {
            return false;
        }
        self.offline[j] = true;
        self.store.fail(server);
        flight::record(
            FlightKind::ServerFailed,
            flight::NONE,
            flight::NONE,
            j as u64,
            self.window,
        );
        true
    }

    /// Repairs one server, restoring its residual headroom to effective
    /// capacity minus the load still resident there. No-op returning
    /// `false` when healthy.
    pub fn force_repair(&mut self, server: ServerId) -> bool {
        let j = server.index();
        if !self.offline[j] {
            return false;
        }
        self.offline[j] = false;
        let used = self.loads.used(j as u32);
        let restored: Vec<f64> = self
            .infra
            .effective_row(server)
            .iter()
            .zip(used)
            .map(|(e, u)| (e - u).max(0.0))
            .collect();
        self.store.restore(server, &restored);
        flight::record(
            FlightKind::ServerRepaired,
            flight::NONE,
            flight::NONE,
            j as u64,
            self.window,
        );
        true
    }

    /// Capacity violations of the packed state: servers (offline ones
    /// included — their load is stranded, not licensed) whose resident
    /// load exceeds effective capacity.
    pub fn capacity_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let eps = 1e-9;
        for j in 0..self.infra.server_count() {
            if self.offline[j] {
                // A failed server's VMs are stranded by design; the
                // overload monitor only guards admission decisions.
                continue;
            }
            let used = self.loads.used(j as u32);
            let eff = self.infra.effective_row(ServerId(j));
            for (l, (&u, &e)) in used.iter().zip(eff).enumerate() {
                if u > e + eps {
                    out.push(Violation::Capacity {
                        server: ServerId(j),
                        attr: AttrId(l),
                        excess: u - e,
                    });
                }
            }
        }
        out
    }

    /// Internal-consistency check for tests: healthy servers' residual +
    /// used must equal effective capacity, and no server may be
    /// overloaded.
    pub fn verify(&self) -> Result<(), String> {
        let eps = 1e-6;
        for j in 0..self.infra.server_count() {
            if self.offline[j] {
                continue;
            }
            let used = self.loads.used(j as u32);
            let eff = self.infra.effective_row(ServerId(j));
            let res = self.store.residual_row(ServerId(j));
            for l in 0..used.len() {
                if used[l] > eff[l] + eps {
                    return Err(format!(
                        "server {j} attr {l}: used {} > effective {}",
                        used[l], eff[l]
                    ));
                }
                if (res[l] + used[l] - eff[l]).abs() > eps.max(eff[l] * 1e-9) {
                    return Err(format!(
                        "server {j} attr {l}: residual {} + used {} != effective {}",
                        res[l], used[l], eff[l]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;

    fn fleet(servers: usize) -> FleetExecutor {
        FleetExecutor::new(Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        ))
    }

    fn batch(requests: usize, vms_each: usize) -> RequestBatch {
        let mut b = RequestBatch::new();
        for _ in 0..requests {
            b.push_request(vec![vm_spec(2.0, 4096.0, 40.0); vms_each], vec![]);
        }
        b
    }

    #[test]
    fn admit_then_depart_returns_to_idle() {
        let mut f = fleet(4);
        let arrivals = batch(3, 2);
        let ids = f.register_arrivals(&arrivals);
        let (report, admitted) = f.execute_window(&RoundRobinAllocator, &arrivals, &ids);
        assert_eq!(report.admitted, 3);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.running_vms, 6);
        assert_eq!(report.migrations, 0, "admission-only engine");
        assert!(report.provider_cost > 0.0);
        assert!(f.verify().is_ok());
        for id in &admitted {
            assert!(f.depart_tenant(*id));
            assert!(!f.depart_tenant(*id), "already departed");
        }
        assert_eq!(f.live_vms(), 0);
        assert_eq!(f.resident_requests(), 0);
        assert!(f.provider_cost.abs() < 1e-9, "cost returns to zero");
        assert!(f.verify().is_ok());
        // Headroom fully restored: the residual equals a fresh fleet's.
        let fresh = fleet(4);
        for j in 0..4 {
            assert_eq!(f.residual_row(ServerId(j)), fresh.residual_row(ServerId(j)));
        }
    }

    #[test]
    fn overload_is_rejected_not_overpacked() {
        let mut f = fleet(1);
        // One commodity server: 28.8 effective cores. 20 requests of one
        // 4-core VM each can host at most 7.
        let mut arrivals = RequestBatch::new();
        for _ in 0..20 {
            arrivals.push_request(vec![vm_spec(4.0, 8192.0, 80.0)], vec![]);
        }
        let ids = f.register_arrivals(&arrivals);
        let (report, _) = f.execute_window(&RoundRobinAllocator, &arrivals, &ids);
        assert_eq!(report.admitted + report.rejected, 20);
        assert!(report.admitted <= 7);
        assert!(report.rejected >= 13);
        assert!(f.verify().is_ok());
        assert!(f.capacity_violations().is_empty());
    }

    #[test]
    fn residual_carries_across_windows() {
        let mut f = fleet(1);
        // Fill most of the single server in window 0...
        let mut big = RequestBatch::new();
        big.push_request(vec![vm_spec(24.0, 65536.0, 1000.0)], vec![]);
        let ids = f.register_arrivals(&big);
        let (r0, admitted) = f.execute_window(&RoundRobinAllocator, &big, &ids);
        assert_eq!(r0.admitted, 1);
        // ...so an 8-core request no longer fits in window 1 (4.8 left).
        let mut small = RequestBatch::new();
        small.push_request(vec![vm_spec(8.0, 8192.0, 80.0)], vec![]);
        let ids1 = f.register_arrivals(&small);
        let (r1, _) = f.execute_window(&RoundRobinAllocator, &small, &ids1);
        assert_eq!(r1.rejected, 1, "residual headroom must gate admission");
        // After departure it fits again.
        assert!(f.depart_tenant(admitted[0]));
        let ids2 = f.register_arrivals(&small);
        let (r2, _) = f.execute_window(&RoundRobinAllocator, &small, &ids2);
        assert_eq!(r2.admitted, 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn failure_blocks_admission_and_repair_restores_headroom() {
        let mut f = fleet(2);
        let one = batch(1, 1);
        let ids = f.register_arrivals(&one);
        let (r0, _) = f.execute_window(&RoundRobinAllocator, &one, &ids);
        assert_eq!(r0.admitted, 1);
        assert!(f.force_failure(ServerId(0)));
        assert!(!f.force_failure(ServerId(0)));
        assert!(f.residual_row(ServerId(0)).iter().all(|&c| c == 0.0));
        assert!(f.force_repair(ServerId(0)));
        assert!(!f.force_repair(ServerId(0)));
        // Headroom restored minus whatever is resident on server 0.
        let res = f.residual_row(ServerId(0));
        let eff = f.infra().effective_row(ServerId(0));
        let used = f.loads.used(0);
        for l in 0..3 {
            assert!((res[l] + used[l] - eff[l]).abs() < 1e-9);
        }
        assert!(f.verify().is_ok());
    }

    #[test]
    fn departures_on_offline_servers_do_not_resurrect_headroom() {
        let mut f = fleet(1);
        let one = batch(1, 1);
        let ids = f.register_arrivals(&one);
        let (_, admitted) = f.execute_window(&RoundRobinAllocator, &one, &ids);
        f.force_failure(ServerId(0));
        assert!(f.depart_tenant(admitted[0]));
        assert!(
            f.residual_row(ServerId(0)).iter().all(|&c| c == 0.0),
            "an offline server has no headroom to return to"
        );
        // Repair restores the full effective capacity (nothing resident).
        f.force_repair(ServerId(0));
        assert_eq!(
            f.residual_row(ServerId(0)),
            f.infra().effective_row(ServerId(0))
        );
    }

    #[test]
    fn tenant_ids_are_sequential_across_windows() {
        let mut f = fleet(4);
        let a = batch(2, 1);
        let ids0 = f.register_arrivals(&a);
        let ids1 = f.register_arrivals(&a);
        assert_eq!(ids0, vec![TenantId(0), TenantId(1)]);
        assert_eq!(ids1, vec![TenantId(2), TenantId(3)]);
    }
}
