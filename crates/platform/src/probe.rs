//! Per-window fleet-health probe emission, shared by both window engines.
//!
//! [`WindowExecutor`](crate::executor::WindowExecutor) and
//! [`FleetExecutor`](crate::fleet::FleetExecutor) keep their load state in
//! different shapes (a dense [`cpo_model::load::LoadTracker`] vs the
//! packed [`cpo_model::fleet::ServerLoadTable`]), but both can answer the
//! same two questions per online server: "what is used?" and "what is the
//! effective capacity?". [`emit`] folds those rows into one
//! [`FleetProbe`] — per-resource utilization, residual-capacity
//! fragmentation, acceptance rate, queue depth, solve latency, active
//! VM/server counts — and hands it to the global series bus.
//!
//! The whole pass is O(m·h) per window and is skipped entirely (one
//! relaxed atomic load) while series collection is disabled.

use cpo_model::prelude::*;
use cpo_obs::series::FleetProbe;

/// Inputs for one probe that do not depend on the engine's load layout.
#[derive(Clone, Copy, Debug)]
pub struct ProbeStats {
    /// Window index (the probe's time axis).
    pub window: u64,
    /// Requests decided this window.
    pub arrivals: usize,
    /// Requests admitted this window.
    pub admitted: usize,
    /// Resident VMs at window close.
    pub active_vms: usize,
    /// Active (non-empty) servers at window close.
    pub active_servers: usize,
    /// Wall-clock solve latency of the window, in microseconds.
    pub solve_latency_us: u64,
}

/// Builds this window's [`FleetProbe`] and submits it to the global
/// series bus. `online` yields the indices of servers that are not
/// offline; `used_row` maps such an index to the server's used-capacity
/// row (length `h`, same attribute order as `infra`). No-op while series
/// collection is disabled.
pub fn emit<'a>(
    infra: &Infrastructure,
    online: impl Iterator<Item = usize>,
    used_row: impl Fn(usize) -> &'a [f64],
    stats: ProbeStats,
) {
    if !cpo_obs::series::is_enabled() {
        return;
    }
    cpo_obs::series::probe(&build(infra, online, used_row, stats));
}

/// The probe-construction core, separated from [`emit`] so tests can
/// inspect the computed fields without the global bus.
pub fn build<'a>(
    infra: &Infrastructure,
    online: impl Iterator<Item = usize>,
    used_row: impl Fn(usize) -> &'a [f64],
    stats: ProbeStats,
) -> FleetProbe {
    let h = infra.attr_count();
    let mut used_tot = vec![0.0f64; h];
    let mut cap_tot = vec![0.0f64; h];
    let mut residuals: Vec<Vec<f64>> = Vec::new();
    for j in online {
        let used = used_row(j);
        let cap = infra.effective_row(ServerId(j));
        let mut resid = vec![0.0; h];
        for l in 0..h {
            used_tot[l] += used[l];
            cap_tot[l] += cap[l];
            resid[l] = (cap[l] - used[l]).max(0.0);
        }
        residuals.push(resid);
    }
    let resid_refs: Vec<&[f64]> = residuals.iter().map(Vec::as_slice).collect();
    let attrs = infra.attrs();
    FleetProbe {
        window: stats.window,
        attrs: attrs.ids().map(|id| attrs.kind(id).label()).collect(),
        utilization: (0..h)
            .map(|l| {
                if cap_tot[l] > 0.0 {
                    used_tot[l] / cap_tot[l]
                } else {
                    0.0
                }
            })
            .collect(),
        fragmentation: FleetProbe::fragmentation_of(&resid_refs, h),
        acceptance_rate: if stats.arrivals > 0 {
            stats.admitted as f64 / stats.arrivals as f64
        } else {
            1.0
        },
        queue_depth: stats.arrivals as u64,
        active_vms: stats.active_vms as u64,
        active_servers: stats.active_servers as u64,
        solve_latency_us: stats.solve_latency_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn infra(servers: usize) -> Infrastructure {
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        )
    }

    #[test]
    fn probe_computes_utilization_per_attr() {
        let infra = infra(2);
        let cap: Vec<f64> = infra.effective_row(ServerId(0)).to_vec();
        // Server 0 half-used on every attr, server 1 idle.
        let half: Vec<f64> = cap.iter().map(|c| c / 2.0).collect();
        let idle = vec![0.0; cap.len()];
        let rows = [half, idle];
        let p = build(
            &infra,
            0..2,
            |j| rows[j].as_slice(),
            ProbeStats {
                window: 5,
                arrivals: 4,
                admitted: 3,
                active_vms: 9,
                active_servers: 1,
                solve_latency_us: 123,
            },
        );
        assert_eq!(p.window, 5);
        assert_eq!(p.attrs, vec!["cpu", "ram", "disk"]);
        for &u in &p.utilization {
            assert!((u - 0.25).abs() < 1e-12, "fleet is quarter-used: {u}");
        }
        assert!((p.acceptance_rate - 0.75).abs() < 1e-12);
        assert_eq!(p.queue_depth, 4);
        assert_eq!(p.active_vms, 9);
        assert_eq!(p.active_servers, 1);
        // Headroom is split: server 0 has half rows, server 1 full rows →
        // largest share is 2/3, fragmentation 1/3.
        assert!(
            (p.fragmentation - 1.0 / 3.0).abs() < 1e-12,
            "{}",
            p.fragmentation
        );
    }

    #[test]
    fn offline_servers_are_excluded_from_both_sides() {
        let infra = infra(2);
        let cap: Vec<f64> = infra.effective_row(ServerId(0)).to_vec();
        let full = cap.clone();
        let p = build(
            &infra,
            // Only server 0 online, fully used.
            std::iter::once(0),
            |_| full.as_slice(),
            ProbeStats {
                window: 0,
                arrivals: 0,
                admitted: 0,
                active_vms: 1,
                active_servers: 1,
                solve_latency_us: 0,
            },
        );
        for &u in &p.utilization {
            assert!((u - 1.0).abs() < 1e-12);
        }
        // Idle window: acceptance rate pegged at 1.0 to stay plottable.
        assert_eq!(p.acceptance_rate, 1.0);
        // No residual anywhere → fragmentation 0 by convention.
        assert_eq!(p.fragmentation, 0.0);
    }
}
