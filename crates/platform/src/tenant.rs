//! Tenants: accepted requests living on the platform across windows.

use cpo_model::prelude::*;

/// Identifier of a tenant (an accepted, still-running request).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct TenantId(pub u64);

/// One running tenant: the request's resources, rules, placements and
/// remaining lifetime.
#[derive(Clone, Debug)]
pub struct Tenant {
    /// Stable platform-wide id.
    pub id: TenantId,
    /// The resources (specs preserved from the original request).
    pub vms: Vec<VmSpec>,
    /// The request's affinity rules, expressed over *local* VM indices
    /// `0..vms.len()` (rebased from the original batch).
    pub rules: Vec<(AffinityKind, Vec<usize>)>,
    /// Current server of each resource (always complete for a tenant).
    pub placement: Vec<ServerId>,
    /// Remaining lifetime in windows; the tenant departs when it hits 0.
    pub remaining_windows: u32,
}

impl Tenant {
    /// Number of resources.
    pub fn size(&self) -> usize {
        self.vms.len()
    }
}

/// Rebases a request's rules from batch-global [`VmId`]s to local indices.
pub fn rebase_rules(req: &Request) -> Vec<(AffinityKind, Vec<usize>)> {
    req.rules
        .iter()
        .map(|rule| {
            let locals = rule
                .vms()
                .iter()
                .map(|vm| {
                    req.vms
                        .iter()
                        .position(|&k| k == *vm)
                        .expect("rule vms belong to the request")
                })
                .collect();
            (rule.kind(), locals)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebase_maps_to_local_indices() {
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![]);
        let rule = AffinityRule::new(AffinityKind::SameServer, vec![VmId(1), VmId(3)]);
        batch.push_request(vec![vm_spec(1.0, 1.0, 1.0); 3], vec![rule]);
        let req = batch.request(RequestId(1));
        let rebased = rebase_rules(req);
        assert_eq!(rebased, vec![(AffinityKind::SameServer, vec![0, 2])]);
    }

    #[test]
    fn tenant_size() {
        let t = Tenant {
            id: TenantId(1),
            vms: vec![vm_spec(1.0, 1.0, 1.0); 2],
            rules: vec![],
            placement: vec![ServerId(0), ServerId(1)],
            remaining_windows: 3,
        };
        assert_eq!(t.size(), 2);
    }
}
