//! Per-window and whole-run accounting.

use std::time::Duration;

/// Metrics of one scheduling window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: u64,
    /// New requests that arrived.
    pub arrivals: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Resources migrated by the reconfiguration plan.
    pub migrations: usize,
    /// Migration cost paid (Σ M_k over moved resources).
    pub migration_cost: f64,
    /// Provider cost of the post-window placement (usage + opex, Eq. 22).
    pub provider_cost: f64,
    /// Downtime/QoS penalty of the post-window placement (Eq. 23).
    pub downtime_cost: f64,
    /// Tenants running at window close.
    pub running_tenants: usize,
    /// Resources running at window close.
    pub running_vms: usize,
    /// Active (non-empty) servers.
    pub active_servers: usize,
    /// Servers offline (failed) during this window.
    pub offline_servers: usize,
    /// Resources still stranded on offline servers after the window (the
    /// reconfiguration plan could not move them anywhere).
    pub stranded_vms: usize,
    /// Peak fabric link utilisation (0 when no network model is attached).
    pub fabric_peak_utilization: f64,
    /// East-west flows the fabric could not admit this window.
    pub denied_flows: usize,
    /// Allocator wall-clock time for the window.
    pub solve_time: Duration,
}

/// Aggregate over a whole simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// The per-window reports in order.
    pub windows: Vec<WindowReport>,
}

impl SimReport {
    /// Total arrivals across the run.
    pub fn total_arrivals(&self) -> usize {
        self.windows.iter().map(|w| w.arrivals).sum()
    }

    /// Total rejections across the run.
    pub fn total_rejected(&self) -> usize {
        self.windows.iter().map(|w| w.rejected).sum()
    }

    /// Overall rejection rate.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.total_arrivals();
        if total == 0 {
            0.0
        } else {
            self.total_rejected() as f64 / total as f64
        }
    }

    /// Total migrations across the run.
    pub fn total_migrations(&self) -> usize {
        self.windows.iter().map(|w| w.migrations).sum()
    }

    /// Mean provider cost per window.
    pub fn mean_provider_cost(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.windows.iter().map(|w| w.provider_cost).sum::<f64>() / self.windows.len() as f64
        }
    }

    /// Total solve time across windows.
    pub fn total_solve_time(&self) -> Duration {
        self.windows.iter().map(|w| w.solve_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(i: u64, arrivals: usize, rejected: usize) -> WindowReport {
        WindowReport {
            window: i,
            arrivals,
            admitted: arrivals - rejected,
            rejected,
            migrations: 1,
            migration_cost: 2.0,
            provider_cost: 10.0 * (i + 1) as f64,
            downtime_cost: 0.0,
            running_tenants: arrivals,
            running_vms: arrivals,
            active_servers: 1,
            offline_servers: 0,
            stranded_vms: 0,
            fabric_peak_utilization: 0.0,
            denied_flows: 0,
            solve_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn aggregates_sum_windows() {
        let report = SimReport {
            windows: vec![window(0, 10, 2), window(1, 6, 1)],
        };
        assert_eq!(report.total_arrivals(), 16);
        assert_eq!(report.total_rejected(), 3);
        assert!((report.rejection_rate() - 3.0 / 16.0).abs() < 1e-12);
        assert_eq!(report.total_migrations(), 2);
        assert!((report.mean_provider_cost() - 15.0).abs() < 1e-12);
        assert_eq!(report.total_solve_time(), Duration::from_millis(10));
    }

    #[test]
    fn empty_run_is_well_defined() {
        let report = SimReport::default();
        assert_eq!(report.rejection_rate(), 0.0);
        assert_eq!(report.mean_provider_cost(), 0.0);
    }
}
