//! The reusable window engine behind [`crate::sim::PlatformSim`].
//!
//! [`WindowExecutor`] owns the live platform state (infrastructure,
//! running tenants, event log, RNG, offline servers, optional network and
//! SLA ledger) and exposes the window loop as separate phases so that
//! different drivers can sequence them:
//!
//! * [`crate::sim::PlatformSim`] runs the classic fixed-step loop —
//!   failures → departures → generated arrivals → solve/apply — once per
//!   `step`;
//! * a continuous-time driver (the `cpo-des` crate) injects arrivals and
//!   departures from an event queue and calls [`WindowExecutor::execute`]
//!   at window boundaries.
//!
//! Both drivers share the same RNG stream discipline: phase methods draw
//! from the executor RNG in a fixed order, so a fixed-window event-driven
//! run reproduces `PlatformSim` exactly for the same seed.

use crate::accounting::WindowReport;
use crate::events::{Event, EventLog};
use crate::network::NetworkModel;
use crate::sla::SlaLedger;
use crate::tenant::{rebase_rules, Tenant, TenantId};
use cpo_core::prelude::Allocator;
use cpo_model::cost;
use cpo_model::prelude::*;
use cpo_obs::flight::{self, FlightKind};
use cpo_scenario::request_gen::{generate_requests, RequestSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Arrival process per window (a fresh batch from this spec).
    pub arrivals: RequestSpec,
    /// Tenant lifetime range in windows, inclusive.
    pub lifetime: (u32, u32),
    /// Master seed (per-window batches derive from it).
    pub seed: u64,
    /// Per-window probability that one running server fails (the paper's
    /// future-work "platform failures" events). A failed server's VMs
    /// must be re-placed by the window's reconfiguration plan.
    pub server_failure_prob: f64,
    /// Windows a failed server stays offline before repair brings it back.
    pub repair_windows: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            arrivals: RequestSpec {
                total_vms: 12,
                ..Default::default()
            },
            lifetime: (3, 8),
            seed: 0,
            server_failure_prob: 0.0,
            repair_windows: 3,
        }
    }
}

/// How admitted tenants receive their lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifetimePolicy {
    /// Draw `remaining_windows` from `SimConfig::lifetime` using the
    /// executor RNG (the classic fixed-step behaviour).
    DrawnWindows,
    /// Leave the tenant resident until [`WindowExecutor::depart_tenant`]
    /// removes it — the driver owns departures (continuous-time mode).
    /// No RNG draw is made.
    External,
}

/// Per-window totals handed to [`WindowExecutor::finish_window`] by
/// whichever path (native solve or sharded store commits) decided the
/// window's admissions.
pub(crate) struct WindowTotals {
    pub arrivals: usize,
    pub admitted: usize,
    pub rejected: usize,
    pub migrations: usize,
    pub migration_cost: f64,
    pub denied_flows: usize,
    pub solve_time: Duration,
}

/// The live platform: infrastructure + running tenants + event history,
/// decomposed into window phases a driver sequences.
pub struct WindowExecutor {
    infra: Infrastructure,
    config: SimConfig,
    tenants: Vec<Tenant>,
    next_tenant: u64,
    window: u64,
    log: EventLog,
    rng: SmallRng,
    /// `offline_until[j]` — window index at which server `j` returns, or 0.
    offline_until: Vec<u64>,
    /// Optional east-west network model (spine-leaf pods).
    network: Option<NetworkModel>,
    /// Per-tenant SLA ledger (Eq. 23 accumulated over windows).
    sla: SlaLedger,
    /// Tenant → flight-recorder correlation key (the request uid assigned
    /// at generation). Populated by [`WindowExecutor::bind_request_keys`];
    /// entries are dropped when the tenant departs or its request is
    /// rejected.
    flight_keys: HashMap<TenantId, u64>,
}

impl WindowExecutor {
    /// Creates an idle executor.
    pub fn new(infra: Infrastructure, config: SimConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        let m = infra.server_count();
        Self {
            infra,
            config,
            tenants: Vec::new(),
            next_tenant: 0,
            window: 0,
            log: EventLog::new(),
            rng,
            offline_until: vec![0; m],
            network: None,
            sla: SlaLedger::new(),
            flight_keys: HashMap::new(),
        }
    }

    /// Associates registered arrival tenant ids with their flight-recorder
    /// correlation keys (request uids). `ids` and `keys` are parallel;
    /// entries with the [`flight::NONE`] sentinel are skipped. Event-driven
    /// drivers call this between [`WindowExecutor::register_arrivals`] and
    /// [`WindowExecutor::execute`] so lifecycle events carry the uid.
    pub fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        for (&id, &key) in ids.iter().zip(keys) {
            if key != flight::NONE {
                self.flight_keys.insert(id, key);
            }
        }
    }

    /// The correlation key bound to a tenant, or [`flight::NONE`].
    pub(crate) fn flight_key(&self, id: TenantId) -> u64 {
        self.flight_keys.get(&id).copied().unwrap_or(flight::NONE)
    }

    /// Attaches a network model (see [`crate::sim::PlatformSim::with_network`]).
    pub fn set_network(&mut self, network: NetworkModel) {
        self.network = Some(network);
    }

    /// The attached network model, if any.
    pub fn network(&self) -> Option<&NetworkModel> {
        self.network.as_ref()
    }

    /// The per-tenant SLA ledger.
    pub fn sla(&self) -> &SlaLedger {
        &self.sla
    }

    /// Running tenants.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Current window index (number of completed windows).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The infrastructure.
    pub fn infra(&self) -> &Infrastructure {
        &self.infra
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Servers currently offline (failed, awaiting repair).
    pub fn offline_servers(&self) -> Vec<ServerId> {
        self.offline_until
            .iter()
            .enumerate()
            .filter_map(|(j, &until)| (until > self.window).then_some(ServerId(j)))
            .collect()
    }

    /// The infrastructure as the scheduler must see it this window:
    /// offline servers get zero capacity, forcing the optimiser to move
    /// their tenants and to place nothing new there. Borrows when every
    /// server is healthy (the common case); clones only when a capacity
    /// mask must be applied.
    pub fn effective_infra(&self) -> Cow<'_, Infrastructure> {
        if self.offline_until.iter().all(|&u| u <= self.window) {
            return Cow::Borrowed(&self.infra);
        }
        let h = self.infra.attr_count();
        let dcs = self
            .infra
            .datacenters()
            .iter()
            .map(|dc| {
                let servers = dc
                    .servers()
                    .map(|j| {
                        let mut s = self.infra.server(j).clone();
                        if self.offline_until[j.index()] > self.window {
                            s.capacity = vec![0.0; h];
                        }
                        s
                    })
                    .collect();
                (dc.name.clone(), servers)
            })
            .collect();
        Cow::Owned(Infrastructure::new(self.infra.attrs().clone(), dcs))
    }

    /// Phase 1 — failures and repairs. Draws at most two RNG values (the
    /// failure coin and the victim index) exactly as the fixed-step loop
    /// always has.
    pub fn inject_failures(&mut self) {
        let window = self.window;
        if self.config.server_failure_prob > 0.0
            && self.rng.gen::<f64>() < self.config.server_failure_prob
        {
            let healthy: Vec<usize> = self
                .offline_until
                .iter()
                .enumerate()
                .filter_map(|(j, &u)| (u <= window).then_some(j))
                .collect();
            if !healthy.is_empty() {
                let j = healthy[self.rng.gen_range(0..healthy.len())];
                self.offline_until[j] = window + u64::from(self.config.repair_windows);
                self.log.push(Event::ServerFailed {
                    window,
                    server: ServerId(j),
                });
                flight::record(
                    FlightKind::ServerFailed,
                    flight::NONE,
                    flight::NONE,
                    j as u64,
                    window,
                );
            }
        }

        for j in 0..self.offline_until.len() {
            if self.offline_until[j] == window && window > 0 {
                self.log.push(Event::ServerRepaired {
                    window,
                    server: ServerId(j),
                });
                flight::record(
                    FlightKind::ServerRepaired,
                    flight::NONE,
                    flight::NONE,
                    j as u64,
                    window,
                );
                self.offline_until[j] = 0;
            }
        }
    }

    /// Marks one server failed without an RNG draw — the continuous-time
    /// driver chooses victims from its own failure process and owns the
    /// repair instant ([`WindowExecutor::force_repair`]); the server stays
    /// down until then. No-op (returning `false`) if already offline.
    pub fn force_failure(&mut self, server: ServerId) -> bool {
        let j = server.index();
        if self.offline_until[j] > self.window {
            return false;
        }
        self.offline_until[j] = u64::MAX;
        self.log.push(Event::ServerFailed {
            window: self.window,
            server,
        });
        flight::record(
            FlightKind::ServerFailed,
            flight::NONE,
            flight::NONE,
            j as u64,
            self.window,
        );
        true
    }

    /// Repairs one server immediately (continuous-time driver owns MTTR).
    /// No-op (returning `false`) if the server is already healthy.
    pub fn force_repair(&mut self, server: ServerId) -> bool {
        let j = server.index();
        if self.offline_until[j] <= self.window {
            return false;
        }
        self.offline_until[j] = 0;
        self.log.push(Event::ServerRepaired {
            window: self.window,
            server,
        });
        flight::record(
            FlightKind::ServerRepaired,
            flight::NONE,
            flight::NONE,
            j as u64,
            self.window,
        );
        true
    }

    /// Phase 2 — decrements every tenant's remaining windows and removes
    /// the expired ones, returning their ids.
    pub fn tick_departures(&mut self) -> Vec<TenantId> {
        let window = self.window;
        let mut departing = Vec::new();
        for t in &mut self.tenants {
            t.remaining_windows = t.remaining_windows.saturating_sub(1);
            if t.remaining_windows == 0 {
                departing.push(t.id);
            }
        }
        for id in &departing {
            self.log.push(Event::TenantDeparted {
                window,
                tenant: *id,
            });
            flight::record(FlightKind::Departed, self.flight_key(*id), id.0, window, 0);
            self.flight_keys.remove(id);
            if let Some(net) = &mut self.network {
                net.release_tenant(*id);
            }
        }
        self.tenants.retain(|t| t.remaining_windows > 0);
        departing
    }

    /// Removes one tenant by id (a continuous-time departure event).
    /// Returns `false` when the tenant is not resident (e.g. it was
    /// rejected at admission).
    pub fn depart_tenant(&mut self, id: TenantId) -> bool {
        let Some(pos) = self.tenants.iter().position(|t| t.id == id) else {
            return false;
        };
        self.log.push(Event::TenantDeparted {
            window: self.window,
            tenant: id,
        });
        flight::record(
            FlightKind::Departed,
            self.flight_key(id),
            id.0,
            self.window,
            0,
        );
        self.flight_keys.remove(&id);
        if let Some(net) = &mut self.network {
            net.release_tenant(id);
        }
        self.tenants.remove(pos);
        true
    }

    /// Phase 3 (fixed-step form) — generates this window's arrival batch
    /// from the configured spec and registers it.
    pub fn generate_window_arrivals(&mut self) -> (RequestBatch, Vec<TenantId>) {
        let arrivals = generate_requests(
            &self.config.arrivals,
            self.config.seed ^ (self.window.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let ids = self.register_arrivals(&arrivals);
        (arrivals, ids)
    }

    /// Phase 3 (event-driven form) — assigns tenant ids to an externally
    /// collected arrival batch and logs the arrivals. Draws no RNG values,
    /// so id assignment matches the fixed-step loop for identical batches.
    pub fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        let window = self.window;
        let ids: Vec<TenantId> = (0..arrivals.request_count())
            .map(|i| TenantId(self.next_tenant + i as u64))
            .collect();
        for (req, &tid) in arrivals.requests().iter().zip(&ids) {
            self.log.push(Event::RequestArrived {
                window,
                tenant: tid,
                vms: req.vms.len(),
            });
        }
        self.next_tenant += arrivals.request_count() as u64;
        ids
    }

    /// Builds the combined window problem: one request per running tenant
    /// (placed, in `previous`) followed by the new arrivals (unplaced).
    /// Returns the problem plus the number of running requests.
    pub fn build_window_problem(&self, arrivals: &RequestBatch) -> (AllocationProblem, usize) {
        let mut batch = RequestBatch::new();
        let mut previous_placements: Vec<Option<ServerId>> = Vec::new();
        for t in &self.tenants {
            let base = previous_placements.len();
            let rules = t
                .rules
                .iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(*kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(t.vms.clone(), rules);
            previous_placements.extend(t.placement.iter().map(|&s| Some(s)));
        }
        let running_requests = self.tenants.len();
        for req in arrivals.requests() {
            let base = previous_placements.len();
            let vms: Vec<VmSpec> = req.vms.iter().map(|&k| arrivals.vm(k).clone()).collect();
            let rules = rebase_rules(req)
                .into_iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(vms, rules);
            previous_placements.extend(std::iter::repeat_n(None, req.vms.len()));
        }
        let previous = Assignment::from_placements(previous_placements);
        (
            AllocationProblem::new(self.effective_infra().into_owned(), batch, Some(previous)),
            running_requests,
        )
    }

    /// Phase 4 — solves the window problem, applies the reconfiguration
    /// plan to running tenants (never evicted), admits or rejects the
    /// registered arrivals, closes the books and advances the window.
    /// Returns the report plus the admitted tenant ids (in arrival order)
    /// so an event-driven caller can schedule their departures.
    pub fn execute(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        arrival_tenant_ids: &[TenantId],
        lifetime: LifetimePolicy,
    ) -> (WindowReport, Vec<TenantId>) {
        let window = self.window;
        let mut sp = cpo_obs::span!("platform.window", window = window);
        let (problem, running_requests) = self.build_window_problem(arrivals);
        let prof_on = cpo_obs::prof::is_enabled();
        let solve_start_us = if prof_on { cpo_obs::now_us() } else { 0 };
        let solve_start = Instant::now();
        let outcome = allocator.allocate(&problem);
        let solve_time = solve_start.elapsed();
        if prof_on {
            cpo_obs::prof::solve_phase(
                window,
                0,
                solve_start_us,
                cpo_obs::now_us(),
                &[solve_time.as_micros() as u64],
            );
        }
        let accepted = problem.accepted_requests(&outcome.assignment);

        // --- Apply to running tenants (never evicted: a tenant whose
        //     request the allocator failed keeps its old placement). ---
        let mut migrations = 0usize;
        let mut migration_cost = 0.0;
        let mut denied_flows = 0usize;
        let mut vm_base = 0usize;
        let mut moved_tenants: Vec<usize> = Vec::new();
        for (idx, t) in self.tenants.iter_mut().enumerate() {
            let req_id = RequestId(idx);
            let n = t.vms.len();
            if accepted.contains(&req_id) {
                let mut moved = false;
                for local in 0..n {
                    let k = VmId(vm_base + local);
                    let new_server = outcome.assignment.server_of(k).expect("accepted ⇒ placed");
                    let old_server = t.placement[local];
                    if new_server != old_server {
                        migrations += 1;
                        migration_cost += t.vms[local].migration_cost;
                        self.log.push(Event::VmMigrated {
                            window,
                            tenant: t.id,
                            vm: local,
                            from: old_server,
                            to: new_server,
                        });
                        flight::record(
                            FlightKind::Migrated,
                            self.flight_keys.get(&t.id).copied().unwrap_or(flight::NONE),
                            t.id.0,
                            old_server.0 as u64,
                            new_server.0 as u64,
                        );
                        t.placement[local] = new_server;
                        moved = true;
                    }
                }
                if moved {
                    moved_tenants.push(idx);
                }
            }
            vm_base += n;
        }
        if let Some(net) = &mut self.network {
            for &idx in &moved_tenants {
                denied_flows += net.readmit_tenant(&self.tenants[idx]).denied;
            }
        }

        // --- Admit / reject arrivals. ---
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        let mut admitted_ids = Vec::new();
        for (i, req) in arrivals.requests().iter().enumerate() {
            let req_id = RequestId(running_requests + i);
            let tid = arrival_tenant_ids[i];
            if accepted.contains(&req_id) {
                // Global VM ids of this request within the window problem.
                let first = problem
                    .batch()
                    .request(req_id)
                    .vms
                    .first()
                    .copied()
                    .expect("non-empty request");
                let placement: Vec<ServerId> = (0..req.vms.len())
                    .map(|l| {
                        outcome
                            .assignment
                            .server_of(VmId(first.index() + l))
                            .expect("accepted ⇒ placed")
                    })
                    .collect();
                denied_flows +=
                    self.apply_admission(tid, arrivals, req, placement, lifetime, window);
                admitted += 1;
                admitted_ids.push(tid);
            } else {
                self.apply_rejection(tid, window);
                rejected += 1;
            }
        }

        let report = self.finish_window(WindowTotals {
            arrivals: arrivals.request_count(),
            admitted,
            rejected,
            migrations,
            migration_cost,
            denied_flows,
            solve_time,
        });
        sp.field("admitted", admitted)
            .field("rejected", rejected)
            .field("migrations", migrations);
        (report, admitted_ids)
    }

    /// Admits one accepted arrival: tenant pushed with its placement,
    /// network flows admitted, `tenant_admitted` log entry, `admitted` +
    /// per-VM `placed` flight events (in that order — `admitted` binds
    /// key↔tenant in the timeline). Returns the number of denied network
    /// flows. Shared by the native solve path and the sharded
    /// store-commit path.
    pub(crate) fn apply_admission(
        &mut self,
        tid: TenantId,
        arrivals: &RequestBatch,
        req: &Request,
        placement: Vec<ServerId>,
        lifetime: LifetimePolicy,
        window: u64,
    ) -> usize {
        let mut denied_flows = 0usize;
        let remaining_windows = match lifetime {
            LifetimePolicy::DrawnWindows => self
                .rng
                .gen_range(self.config.lifetime.0..=self.config.lifetime.1)
                .max(1),
            LifetimePolicy::External => u32::MAX,
        };
        self.tenants.push(Tenant {
            id: tid,
            vms: req.vms.iter().map(|&k| arrivals.vm(k).clone()).collect(),
            rules: rebase_rules(req),
            placement,
            remaining_windows,
        });
        if let Some(net) = &mut self.network {
            denied_flows += net
                .admit_tenant(self.tenants.last().expect("just pushed"))
                .denied;
        }
        self.log.push(Event::TenantAdmitted {
            window,
            tenant: tid,
        });
        if flight::is_enabled() {
            let key = self.flight_key(tid);
            flight::record(
                FlightKind::Admitted,
                key,
                tid.0,
                window,
                req.vms.len() as u64,
            );
            let placed = self.tenants.last().expect("just pushed");
            for (local, &server) in placed.placement.iter().enumerate() {
                flight::record(
                    FlightKind::Placed,
                    key,
                    tid.0,
                    server.0 as u64,
                    local as u64,
                );
            }
        }
        denied_flows
    }

    /// Rejects one arrival: `request_rejected` log entry, `rejected`
    /// flight event, correlation key dropped.
    pub(crate) fn apply_rejection(&mut self, tid: TenantId, window: u64) {
        self.log.push(Event::RequestRejected {
            window,
            tenant: tid,
        });
        flight::record(FlightKind::Rejected, self.flight_key(tid), tid.0, window, 0);
        self.flight_keys.remove(&tid);
    }

    /// Residual-headroom view of the live platform for admission-only
    /// sharded scheduling: effective capacity (offline servers zeroed)
    /// minus every resident VM's demand, as a fresh infrastructure with
    /// unit factors. Resident placements are pinned — the sharded path
    /// never migrates — so this is exactly the capacity a new arrival
    /// may consume.
    pub(crate) fn admission_residual(&self) -> Infrastructure {
        let mut residual = crate::store::residual_view(&self.effective_infra());
        for t in &self.tenants {
            for (vm, &server) in t.vms.iter().zip(&t.placement) {
                let neg: Vec<f64> = vm.demand.iter().map(|d| -d).collect();
                residual.adjust_capacity(server, &neg);
            }
        }
        residual
    }

    /// Post-admission window close shared by the native and sharded
    /// paths: SLA observation, online invariant monitors, provider and
    /// downtime cost on the real platform state, report, log +
    /// `window_closed` flight event, fleet probe, gauges; advances the
    /// window counter.
    pub(crate) fn finish_window(&mut self, totals: WindowTotals) -> WindowReport {
        let window = self.window;
        let WindowTotals {
            arrivals,
            admitted,
            rejected,
            migrations,
            migration_cost,
            denied_flows,
            solve_time,
        } = totals;
        // --- Post-window accounting on the real platform state. ---
        let (state_batch, state_assignment) = self.snapshot();
        let tracker = LoadTracker::from_assignment(&state_assignment, &state_batch, &self.infra);
        if state_batch.vm_count() > 0 {
            let breaches =
                self.sla
                    .observe_window(&self.tenants, &state_batch, &tracker, &self.infra);
            if !breaches.is_empty() {
                cpo_obs::counter_add("monitor.sla_breaches", breaches.len() as u64);
                for (tid, credit) in &breaches {
                    // Credit in integer micro-units: exact round trip
                    // through the u64 event payload.
                    flight::record(
                        FlightKind::SlaViolated,
                        self.flight_key(*tid),
                        tid.0,
                        window,
                        (credit * 1e6).round() as u64,
                    );
                }
            }
            // Online invariant monitors (Eqs. 4/16 capacity, 5/17
            // placement, 9–14 affinity) over the *live* platform state.
            // Running tenants are never evicted and were feasible at
            // admission, so any violation here is a platform bug or a
            // failure-induced capacity loss worth flagging.
            if flight::is_enabled() {
                let report =
                    cpo_model::constraints::check(&state_assignment, &state_batch, &self.infra);
                for v in report.violations() {
                    cpo_core::monitor::record_violation("platform", v);
                }
            }
        }
        let provider_cost = cost::usage_opex_cost(&tracker, &self.infra);
        let downtime_cost =
            cost::downtime_cost(&state_assignment, &tracker, &state_batch, &self.infra);
        let offline = self.offline_servers();
        let stranded_vms = self
            .tenants
            .iter()
            .flat_map(|t| t.placement.iter())
            .filter(|j| offline.contains(j))
            .count();
        let report = WindowReport {
            window,
            arrivals,
            admitted,
            rejected,
            migrations,
            migration_cost,
            provider_cost,
            downtime_cost,
            running_tenants: self.tenants.len(),
            running_vms: self.tenants.iter().map(Tenant::size).sum(),
            active_servers: tracker.active_servers(),
            offline_servers: offline.len(),
            stranded_vms,
            fabric_peak_utilization: self
                .network
                .as_ref()
                .map_or(0.0, NetworkModel::peak_utilization),
            denied_flows,
            solve_time,
        };
        self.log.push(Event::WindowClosed {
            window,
            running_tenants: self.tenants.len(),
            active_servers: tracker.active_servers(),
        });
        flight::record(
            FlightKind::WindowClosed,
            flight::NONE,
            flight::NONE,
            window,
            self.tenants.len() as u64,
        );
        crate::probe::emit(
            &self.infra,
            (0..self.offline_until.len()).filter(|&j| self.offline_until[j] <= window),
            |j| tracker.used_row(ServerId(j)),
            crate::probe::ProbeStats {
                window,
                arrivals: report.arrivals,
                admitted,
                active_vms: report.running_vms,
                active_servers: report.active_servers,
                solve_latency_us: solve_time.as_micros() as u64,
            },
        );
        cpo_obs::record_value("platform.solve_ns", solve_time.as_nanos() as u64);
        cpo_obs::gauge_set("platform.running_tenants", self.tenants.len() as f64);
        cpo_obs::gauge_set("platform.active_servers", tracker.active_servers() as f64);
        self.window += 1;
        report
    }

    /// Snapshot of the running platform as (batch, assignment) — the state
    /// the accounting evaluates.
    pub fn snapshot(&self) -> (RequestBatch, Assignment) {
        let mut batch = RequestBatch::new();
        let mut placements = Vec::new();
        for t in &self.tenants {
            let base = placements.len();
            let rules = t
                .rules
                .iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(*kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(t.vms.clone(), rules);
            placements.extend(t.placement.iter().map(|&s| Some(s)));
        }
        (batch, Assignment::from_placements(placements))
    }

    /// Consistency check: the running platform state never violates
    /// capacity or the tenants' own rules. Returns the violation report.
    pub fn verify_state(&self) -> cpo_model::constraints::ViolationReport {
        let (batch, assignment) = self.snapshot();
        cpo_model::constraints::check(&assignment, &batch, &self.infra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;

    fn executor(servers: usize, vms_per_window: usize) -> WindowExecutor {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        );
        let config = SimConfig {
            arrivals: RequestSpec {
                total_vms: vms_per_window,
                ..Default::default()
            },
            lifetime: (2, 4),
            seed: 11,
            ..Default::default()
        };
        WindowExecutor::new(infra, config)
    }

    #[test]
    fn effective_infra_borrows_when_all_healthy() {
        let exec = executor(4, 4);
        assert!(matches!(exec.effective_infra(), Cow::Borrowed(_)));
    }

    #[test]
    fn effective_infra_masks_offline_capacity() {
        let mut exec = executor(4, 4);
        assert!(exec.force_failure(ServerId(2)));
        let eff = exec.effective_infra();
        assert!(matches!(eff, Cow::Owned(_)));
        assert!(eff.server(ServerId(2)).capacity.iter().all(|&c| c == 0.0));
        assert!(eff.server(ServerId(0)).capacity.iter().any(|&c| c > 0.0));
        assert!(exec.force_repair(ServerId(2)));
        assert!(matches!(exec.effective_infra(), Cow::Borrowed(_)));
    }

    #[test]
    fn force_failure_and_repair_are_idempotent() {
        let mut exec = executor(3, 2);
        assert!(exec.force_failure(ServerId(1)));
        assert!(!exec.force_failure(ServerId(1)), "already offline");
        assert_eq!(exec.offline_servers(), vec![ServerId(1)]);
        assert!(exec.force_repair(ServerId(1)));
        assert!(!exec.force_repair(ServerId(1)), "already healthy");
        assert!(exec.offline_servers().is_empty());
    }

    #[test]
    fn external_lifetime_tenants_outlive_window_ticks() {
        let mut exec = executor(8, 5);
        let (arrivals, ids) = exec.generate_window_arrivals();
        let (report, admitted) = exec.execute(
            &RoundRobinAllocator,
            &arrivals,
            &ids,
            LifetimePolicy::External,
        );
        assert!(report.admitted > 0);
        assert_eq!(admitted.len(), report.admitted);
        // Window ticks must never expire externally-managed tenants.
        for _ in 0..50 {
            exec.tick_departures();
        }
        assert_eq!(exec.tenants().len(), report.admitted);
        // The driver departs them explicitly.
        for id in &admitted {
            assert!(exec.depart_tenant(*id));
            assert!(!exec.depart_tenant(*id), "already departed");
        }
        assert!(exec.tenants().is_empty());
    }

    #[test]
    fn register_arrivals_assigns_sequential_ids() {
        let mut exec = executor(8, 4);
        let (a1, ids1) = exec.generate_window_arrivals();
        assert_eq!(ids1.len(), a1.request_count());
        let ids2 = exec.register_arrivals(&a1);
        assert_eq!(ids2[0].0, ids1.last().unwrap().0 + 1);
    }
}
