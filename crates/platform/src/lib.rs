//! # cpo-platform — the IaaS platform simulator
//!
//! The paper's scheduler "is aware of the cloud platform status in real
//! time" and batches "all requests within a cyclic time window during the
//! execution of the allocation optimization process". This crate provides
//! that operational substrate:
//!
//! * [`tenant`] — accepted requests living across windows with their
//!   affinity rules and lifetimes;
//! * [`sim`] — the cyclic window loop: departures → arrivals → solve (any
//!   [`cpo_core::allocator::Allocator`]) → apply reconfiguration plan
//!   (migrations, Eq. 26) → admit/reject;
//! * [`events`] — an append-only platform event log;
//! * [`accounting`] — per-window and per-run metrics (provider cost,
//!   downtime, migrations, rejection rate);
//! * [`fleet`] — [`fleet::FleetExecutor`], the memory-lean admission-only
//!   engine for production-scale trace replay (packed tables, residual
//!   headroom, no event log).
//!
//! Running tenants are never evicted: if the optimizer's plan drops one,
//! the platform keeps its previous placement and pays only planned
//! migrations.
//!
//! ```
//! use cpo_model::prelude::*;
//! use cpo_model::attr::AttrSet;
//! use cpo_platform::prelude::*;
//! use cpo_core::prelude::RoundRobinAllocator;
//!
//! let infra = Infrastructure::new(
//!     AttrSet::standard(),
//!     vec![("dc".into(), ServerProfile::commodity(3).build_many(8))],
//! );
//! let mut sim = PlatformSim::new(infra, SimConfig::default());
//! let report = sim.run(&RoundRobinAllocator, 5);
//! assert_eq!(report.windows.len(), 5);
//! assert!(sim.verify_state().is_feasible());
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod events;
pub mod executor;
pub mod fleet;
pub mod network;
pub mod probe;
pub mod shard;
pub mod sim;
pub mod sla;
pub mod store;
pub mod tenant;

/// The most-used simulator types.
pub mod prelude {
    pub use crate::accounting::{SimReport, WindowReport};
    pub use crate::events::{Event, EventLog, EVENT_LOG_SCHEMA_VERSION};
    pub use crate::executor::{LifetimePolicy, WindowExecutor};
    pub use crate::fleet::FleetExecutor;
    pub use crate::network::{FlowAdmission, NetworkModel};
    pub use crate::shard::{PartitionStrategy, ShardBackend, ShardConfig, ShardedScheduler};
    pub use crate::sim::{PlatformSim, SimConfig};
    pub use crate::sla::{SlaLedger, SlaRecord};
    pub use crate::store::{
        CommitCtx, ConflictReason, PlacementStore, StoreMetrics, StoreSnapshot,
    };
    pub use crate::tenant::{Tenant, TenantId};
}
