//! The platform event log.

use crate::tenant::TenantId;
use cpo_model::prelude::ServerId;

/// One platform event, stamped with the window index it occurred in.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum Event {
    /// A new request arrived in the window's batch.
    RequestArrived {
        /// Window index.
        window: u64,
        /// Tentative tenant id the request would get.
        tenant: TenantId,
        /// Number of resources requested.
        vms: usize,
    },
    /// A request was accepted and placed.
    TenantAdmitted {
        /// Window index.
        window: u64,
        /// The new tenant.
        tenant: TenantId,
    },
    /// A request was rejected by the allocator.
    RequestRejected {
        /// Window index.
        window: u64,
        /// The rejected (never-admitted) tenant id.
        tenant: TenantId,
    },
    /// A running resource was migrated by a reconfiguration plan.
    VmMigrated {
        /// Window index.
        window: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// Local VM index within the tenant.
        vm: usize,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
    },
    /// A tenant's lifetime expired and its resources were released.
    TenantDeparted {
        /// Window index.
        window: u64,
        /// The departing tenant.
        tenant: TenantId,
    },
    /// A physical server failed (future-work platform events).
    ServerFailed {
        /// Window index.
        window: u64,
        /// The failed server.
        server: ServerId,
    },
    /// A failed server came back after repair.
    ServerRepaired {
        /// Window index.
        window: u64,
        /// The repaired server.
        server: ServerId,
    },
    /// A scheduling window closed.
    WindowClosed {
        /// Window index.
        window: u64,
        /// Tenants running at close.
        running_tenants: usize,
        /// Active (non-empty) servers at close.
        active_servers: usize,
    },
}

impl Event {
    /// The window the event belongs to.
    pub fn window(&self) -> u64 {
        match self {
            Event::RequestArrived { window, .. }
            | Event::TenantAdmitted { window, .. }
            | Event::RequestRejected { window, .. }
            | Event::VmMigrated { window, .. }
            | Event::TenantDeparted { window, .. }
            | Event::ServerFailed { window, .. }
            | Event::ServerRepaired { window, .. }
            | Event::WindowClosed { window, .. } => *window,
        }
    }
}

/// An append-only event log with typed queries.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of one window.
    pub fn window_events(&self, window: u64) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.window() == window)
    }

    /// Total migrations recorded.
    pub fn migration_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::VmMigrated { .. }))
            .count()
    }

    /// Total rejections recorded.
    pub fn rejection_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::RequestRejected { .. }))
            .count()
    }

    /// Total server failures recorded.
    pub fn failure_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::ServerFailed { .. }))
            .count()
    }

    /// Serialises the log as JSON lines (one event object per line) — the
    /// trace format ops tooling and tests replay.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("events always serialise"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSON-lines trace back into a log.
    pub fn from_json_lines(trace: &str) -> Result<Self, String> {
        let mut log = Self::new();
        for (i, line) in trace.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: Event =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            log.push(event);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_and_filters() {
        let mut log = EventLog::new();
        log.push(Event::RequestArrived {
            window: 0,
            tenant: TenantId(1),
            vms: 2,
        });
        log.push(Event::TenantAdmitted {
            window: 0,
            tenant: TenantId(1),
        });
        log.push(Event::RequestRejected {
            window: 1,
            tenant: TenantId(2),
        });
        log.push(Event::VmMigrated {
            window: 1,
            tenant: TenantId(1),
            vm: 0,
            from: ServerId(0),
            to: ServerId(1),
        });
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.window_events(1).count(), 2);
        assert_eq!(log.migration_count(), 1);
        assert_eq!(log.rejection_count(), 1);
        assert_eq!(log.events()[3].window(), 1);
    }

    #[test]
    fn json_lines_roundtrip() {
        let mut log = EventLog::new();
        log.push(Event::TenantAdmitted {
            window: 0,
            tenant: TenantId(1),
        });
        log.push(Event::ServerFailed {
            window: 2,
            server: ServerId(4),
        });
        log.push(Event::WindowClosed {
            window: 2,
            running_tenants: 1,
            active_servers: 3,
        });
        let trace = log.to_json_lines();
        assert_eq!(trace.lines().count(), 3);
        assert!(trace.contains("\"event\":\"server_failed\""));
        let back = EventLog::from_json_lines(&trace).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn bad_trace_lines_are_reported_with_position() {
        let err = EventLog::from_json_lines("{}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
