//! The platform event log.

use crate::tenant::TenantId;
use cpo_model::prelude::ServerId;

/// Version of the JSON-lines trace schema written by
/// [`EventLog::to_json_lines`]. Bump when an [`Event`] variant changes
/// shape; [`EventLog::from_json_lines`] refuses traces written under a
/// different version instead of mis-parsing them.
pub const EVENT_LOG_SCHEMA_VERSION: u32 = 1;

/// One platform event, stamped with the window index it occurred in.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum Event {
    /// A new request arrived in the window's batch.
    RequestArrived {
        /// Window index.
        window: u64,
        /// Tentative tenant id the request would get.
        tenant: TenantId,
        /// Number of resources requested.
        vms: usize,
    },
    /// A request was accepted and placed.
    TenantAdmitted {
        /// Window index.
        window: u64,
        /// The new tenant.
        tenant: TenantId,
    },
    /// A request was rejected by the allocator.
    RequestRejected {
        /// Window index.
        window: u64,
        /// The rejected (never-admitted) tenant id.
        tenant: TenantId,
    },
    /// A running resource was migrated by a reconfiguration plan.
    VmMigrated {
        /// Window index.
        window: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// Local VM index within the tenant.
        vm: usize,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
    },
    /// A tenant's lifetime expired and its resources were released.
    TenantDeparted {
        /// Window index.
        window: u64,
        /// The departing tenant.
        tenant: TenantId,
    },
    /// A physical server failed (future-work platform events).
    ServerFailed {
        /// Window index.
        window: u64,
        /// The failed server.
        server: ServerId,
    },
    /// A failed server came back after repair.
    ServerRepaired {
        /// Window index.
        window: u64,
        /// The repaired server.
        server: ServerId,
    },
    /// A scheduling window closed.
    WindowClosed {
        /// Window index.
        window: u64,
        /// Tenants running at close.
        running_tenants: usize,
        /// Active (non-empty) servers at close.
        active_servers: usize,
    },
}

impl Event {
    /// The window the event belongs to.
    pub fn window(&self) -> u64 {
        match self {
            Event::RequestArrived { window, .. }
            | Event::TenantAdmitted { window, .. }
            | Event::RequestRejected { window, .. }
            | Event::VmMigrated { window, .. }
            | Event::TenantDeparted { window, .. }
            | Event::ServerFailed { window, .. }
            | Event::ServerRepaired { window, .. }
            | Event::WindowClosed { window, .. } => *window,
        }
    }
}

/// An append-only event log with typed queries.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of one window.
    pub fn window_events(&self, window: u64) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.window() == window)
    }

    /// Total migrations recorded.
    pub fn migration_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::VmMigrated { .. }))
            .count()
    }

    /// Total rejections recorded.
    pub fn rejection_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::RequestRejected { .. }))
            .count()
    }

    /// Total server failures recorded.
    pub fn failure_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::ServerFailed { .. }))
            .count()
    }

    /// Serialises the log as JSON lines — a schema-version header line
    /// followed by one event object per line — the trace format ops
    /// tooling and tests replay.
    pub fn to_json_lines(&self) -> String {
        let mut out = format!("{{\"schema_version\":{EVENT_LOG_SCHEMA_VERSION}}}\n");
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("events always serialise"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSON-lines trace back into a log.
    ///
    /// A `{"schema_version":N}` header is checked against
    /// [`EVENT_LOG_SCHEMA_VERSION`]: an unknown version is rejected with
    /// a clear error rather than mis-parsed. Headerless traces (written
    /// before versioning existed) are accepted as version 1.
    pub fn from_json_lines(trace: &str) -> Result<Self, String> {
        let mut log = Self::new();
        for (i, line) in trace.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.contains("\"schema_version\"") {
                let header: serde_json::Value = serde_json::from_str(line)
                    .map_err(|e| format!("line {}: bad schema header: {e}", i + 1))?;
                let version = match header.get("schema_version") {
                    Some(serde_json::Value::UInt(u)) => *u,
                    Some(serde_json::Value::Int(n)) if *n >= 0 => *n as u64,
                    _ => {
                        return Err(format!("line {}: schema_version is not a number", i + 1));
                    }
                };
                if version != u64::from(EVENT_LOG_SCHEMA_VERSION) {
                    return Err(format!(
                        "line {}: unsupported event-log schema version {version} \
                         (this build reads version {EVENT_LOG_SCHEMA_VERSION})",
                        i + 1
                    ));
                }
                continue;
            }
            let event: Event =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            log.push(event);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_and_filters() {
        let mut log = EventLog::new();
        log.push(Event::RequestArrived {
            window: 0,
            tenant: TenantId(1),
            vms: 2,
        });
        log.push(Event::TenantAdmitted {
            window: 0,
            tenant: TenantId(1),
        });
        log.push(Event::RequestRejected {
            window: 1,
            tenant: TenantId(2),
        });
        log.push(Event::VmMigrated {
            window: 1,
            tenant: TenantId(1),
            vm: 0,
            from: ServerId(0),
            to: ServerId(1),
        });
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.window_events(1).count(), 2);
        assert_eq!(log.migration_count(), 1);
        assert_eq!(log.rejection_count(), 1);
        assert_eq!(log.events()[3].window(), 1);
    }

    #[test]
    fn json_lines_roundtrip() {
        let mut log = EventLog::new();
        log.push(Event::TenantAdmitted {
            window: 0,
            tenant: TenantId(1),
        });
        log.push(Event::ServerFailed {
            window: 2,
            server: ServerId(4),
        });
        log.push(Event::WindowClosed {
            window: 2,
            running_tenants: 1,
            active_servers: 3,
        });
        let trace = log.to_json_lines();
        assert_eq!(trace.lines().count(), 4, "schema header + 3 events");
        assert!(trace.starts_with("{\"schema_version\":1}\n"));
        assert!(trace.contains("\"event\":\"server_failed\""));
        let back = EventLog::from_json_lines(&trace).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn bad_trace_lines_are_reported_with_position() {
        let err = EventLog::from_json_lines("{}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn headerless_legacy_trace_is_accepted() {
        let mut log = EventLog::new();
        log.push(Event::TenantAdmitted {
            window: 0,
            tenant: TenantId(1),
        });
        let trace = log.to_json_lines();
        let body: String = trace.lines().skip(1).map(|l| format!("{l}\n")).collect();
        let back = EventLog::from_json_lines(&body).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let err = EventLog::from_json_lines("{\"schema_version\":42}\n").unwrap_err();
        assert!(
            err.contains("unsupported event-log schema version 42"),
            "{err}"
        );
        assert!(err.contains("version 1"), "{err}");
    }

    #[test]
    fn schema_version_header_roundtrips_through_replay() {
        let log = EventLog::new();
        let trace = log.to_json_lines();
        assert_eq!(trace.lines().count(), 1);
        assert!(EventLog::from_json_lines(&trace)
            .unwrap()
            .events()
            .is_empty());
    }
}
