//! Sharded window scheduling over the optimistic-commit
//! [`PlacementStore`].
//!
//! [`ShardedScheduler`] partitions each window's arrivals across N
//! worker shards. Every round, each shard solves its slice as an
//! independent admission problem on a shared [`StoreSnapshot`] — with
//! its **own** [`DeltaEvaluator`] for solution scoring, never a shared
//! pool — and the coordinator then replays the proposed placements
//! through [`PlacementStore::try_commit`] in global arrival order:
//!
//! * **committed** → the backend applies the admission (the commit
//!   already reserved the capacity);
//! * **solver-rejected** → final: within one window the residual only
//!   shrinks, so a request the solver could not fit on this round's
//!   snapshot cannot fit later;
//! * **conflicted** → the request bounced off capacity another shard
//!   took first; it is resubmitted for a re-solve on a fresh snapshot
//!   next round, up to [`ShardConfig::retry_budget`] retry rounds, after
//!   which it is force-rejected.
//!
//! Progress is guaranteed: the first commit of every round validates
//! against the very snapshot it was solved on, so each round terminates
//! at least one request. Determinism is by construction — partitioning
//! ([`PartitionStrategy`]: hash-by-region by default, round-robin on
//! arrival order for comparison) is a pure function of (snapshot,
//! remaining order), commits are applied sequentially in arrival order,
//! and shard solves are pure functions of (snapshot, slice) — so a run
//! is bit-reproducible for a fixed seed and shard count whether the
//! shards solved on real threads or serially.
//!
//! Shard solves run on `std::thread::scope` threads when the host has
//! ≥2 CPUs; on a single CPU they run serially with each solve timed
//! individually. Either way the *modeled* window service time under the
//! DES clock is the critical path — `max` over shards per round — which
//! is what [`WindowReport::solve_time`] carries for a sharded window.
//!
//! At `shards = 1` the scheduler is bit-identical to the unsharded
//! path: a [`WindowExecutor`] backend delegates to its native solve
//! (full reconfiguration semantics), while a [`FleetExecutor`] backend
//! still runs the store protocol — one shard solving on a snapshot of a
//! quiescent store commits every accepted request without conflict, and
//! the per-VM commit arithmetic is the same float sequence as the
//! native path (proven by `tests/sharded_equivalence.rs`).

use crate::accounting::WindowReport;
use crate::executor::{LifetimePolicy, WindowExecutor, WindowTotals};
use crate::fleet::FleetExecutor;
use crate::store::{CommitCtx, PlacementStore, StoreSnapshot};
use crate::tenant::TenantId;
use cpo_core::prelude::Allocator;
use cpo_model::delta::DeltaEvaluator;
use cpo_model::prelude::*;
use cpo_obs::flight;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a round's remaining requests are divided among the shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartitionStrategy {
    /// `remaining[p] → shard p % N`. Spreads every region's demand over
    /// *all* shards — which maximises the chance that two shards race
    /// for the same servers and one of them bounces.
    RoundRobin,
    /// Hash-by-region (the default): each request's likely placement
    /// region is predicted by a greedy first-fit dry run on the
    /// snapshot's residual, and requests predicted into the same region
    /// hash to the same shard. Colocated contenders are then solved
    /// *jointly* by one shard, against a view of the residual masked to
    /// the regions that shard owns this round — so its internally
    /// consistent solution fits the live residual and cannot stray onto
    /// servers another shard's region owns. Shards therefore stop racing
    /// each other at commit time, which is what cuts the conflict rate
    /// at equal shard counts (the `store.conflict_rate` series and the
    /// PR 9 hotspot tables show the before/after). A solver rejection
    /// under a masked view is *not* final — the shard only saw part of
    /// the fleet — so it bounces into the next round like a commit
    /// conflict; the final retry round always solves unmasked, keeping
    /// rejections there genuinely final. The prediction is a pure
    /// function of (snapshot, remaining order), so determinism is
    /// preserved.
    #[default]
    RegionHash,
}

/// Sharding parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Worker shards per window (1 = unsharded).
    pub shards: usize,
    /// Retry rounds a conflicted request may consume after its first
    /// attempt before it is force-rejected.
    pub retry_budget: usize,
    /// Request-to-shard partitioning.
    pub partition: PartitionStrategy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            retry_budget: 3,
            partition: PartitionStrategy::default(),
        }
    }
}

/// FNV-1a — tiny, stable, and good enough to spread region keys.
fn fnv1a(key: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A request's predicted placement region, from the first-fit dry run.
#[derive(Clone, Copy, Debug)]
enum Region {
    /// Fits: predicted into a datacenter (multi-datacenter fleets).
    Dc(usize),
    /// Fits: predicted onto a server (single-datacenter fleets).
    Server(usize),
    /// Fits nowhere whole; carries the arrival index so the hopeless
    /// tail spreads across shards instead of piling onto one.
    Unplaced(usize),
}

impl Region {
    fn shard_key(self) -> u64 {
        match self {
            Region::Dc(d) => fnv1a(d as u64),
            Region::Server(j) => fnv1a(j as u64),
            Region::Unplaced(i) => fnv1a(u64::MAX - i as u64),
        }
    }
}

/// Predicts each remaining request's placement region by a greedy
/// first-fit dry run over a scratch copy of the snapshot residual:
/// demands are subtracted as predicted so successive requests see the
/// space earlier ones are about to take, and a rolling cursor amortises
/// the server scan across requests. The region is the predicted
/// server's datacenter on multi-datacenter fleets (the paper's region
/// notion) and the server itself on single-datacenter ones.
fn region_plan(
    residual: &Infrastructure,
    arrivals: &RequestBatch,
    remaining: &[usize],
) -> Vec<Region> {
    let m = residual.server_count();
    let h = residual.attr_count();
    let by_datacenter = residual.datacenter_count() > 1;
    let mut room: Vec<Vec<f64>> = (0..m)
        .map(|j| residual.effective_row(ServerId(j)).to_vec())
        .collect();
    let mut cursor = 0usize;
    let mut demand = vec![0.0f64; h];
    remaining
        .iter()
        .map(|&i| {
            let req = arrivals.request(RequestId(i));
            demand.fill(0.0);
            for &k in &req.vms {
                for (d, x) in demand.iter_mut().zip(&arrivals.vm(k).demand) {
                    *d += x;
                }
            }
            let mut predicted: Option<ServerId> = None;
            for step in 0..m {
                let j = (cursor + step) % m;
                if room[j].iter().zip(&demand).all(|(r, d)| d <= r) {
                    for (r, d) in room[j].iter_mut().zip(&demand) {
                        *r -= d;
                    }
                    predicted = Some(ServerId(j));
                    cursor = j;
                    break;
                }
            }
            match predicted {
                Some(j) if by_datacenter => Region::Dc(residual.datacenter_of(j).index()),
                Some(j) => Region::Server(j.index()),
                None => Region::Unplaced(i),
            }
        })
        .collect()
}

/// The snapshot residual as one masked shard sees it: servers outside
/// the regions the shard owns this round are zeroed, so its solve
/// cannot stray onto servers another shard's region owns.
fn masked_residual(residual: &Infrastructure, mask: &[bool]) -> Infrastructure {
    let zeros = vec![0.0; residual.attr_count()];
    let mut masked = residual.clone();
    for (j, &keep) in mask.iter().enumerate() {
        if !keep {
            masked.set_capacity(ServerId(j), &zeros);
        }
    }
    masked
}

/// One round's partitioning: the per-part request lists, each remaining
/// request's `(part, local index)` slot, and one optional server mask
/// per part.
type RoundPartition = (Vec<Vec<usize>>, Vec<(usize, usize)>, Vec<Option<Vec<bool>>>);

/// Splits `remaining` into `shard_count` parts and returns, aligned with
/// `remaining`, each request's `(part, local index)` slot — the commit
/// loop uses the slots to find a request's solution regardless of the
/// partitioning shape — plus one optional server mask per part.
///
/// Masks exist only under [`PartitionStrategy::RegionHash`] with more
/// than one shard and `mask_regions` set (the driver clears it on the
/// final retry round): a part whose requests were *all* predicted to
/// fit is masked to the union of its regions, making the shards'
/// solves disjoint by construction; a part holding any
/// [`Region::Unplaced`] request keeps the full fleet view, since the
/// dry run has no region to confine it to.
fn partition_round(
    strategy: PartitionStrategy,
    residual: &Infrastructure,
    arrivals: &RequestBatch,
    remaining: &[usize],
    shard_count: usize,
    mask_regions: bool,
) -> RoundPartition {
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    let mut slots: Vec<(usize, usize)> = Vec::with_capacity(remaining.len());
    let mut masks: Vec<Option<Vec<bool>>> = vec![None; shard_count];
    match strategy {
        PartitionStrategy::RoundRobin => {
            for (p, &i) in remaining.iter().enumerate() {
                let part = p % shard_count;
                slots.push((part, parts[part].len()));
                parts[part].push(i);
            }
        }
        PartitionStrategy::RegionHash => {
            let regions = region_plan(residual, arrivals, remaining);
            let m = residual.server_count();
            let mut owned: Vec<Vec<bool>> = vec![vec![false; m]; shard_count];
            let mut confinable: Vec<bool> = vec![true; shard_count];
            for (&i, &region) in remaining.iter().zip(&regions) {
                let part = (region.shard_key() % shard_count as u64) as usize;
                slots.push((part, parts[part].len()));
                parts[part].push(i);
                match region {
                    Region::Dc(d) => {
                        for (j, own) in owned[part].iter_mut().enumerate() {
                            if residual.datacenter_of(ServerId(j)).index() == d {
                                *own = true;
                            }
                        }
                    }
                    Region::Server(j) => owned[part][j] = true,
                    Region::Unplaced(_) => confinable[part] = false,
                }
            }
            if mask_regions && shard_count > 1 {
                for (p, owned) in owned.into_iter().enumerate() {
                    if confinable[p] && !parts[p].is_empty() {
                        masks[p] = Some(owned);
                    }
                }
            }
        }
    }
    (parts, slots, masks)
}

/// What a window engine must expose for [`ShardedScheduler`] to drive
/// it through the store-commit protocol. Implemented by
/// [`FleetExecutor`] (persistent cross-window store) and
/// [`WindowExecutor`] (per-window admission store materialised from
/// live tenant state).
pub trait ShardBackend {
    /// Completed windows (the next window's index).
    fn window(&self) -> u64;

    /// The unsharded seed path for one window.
    fn native_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        arrival_tenant_ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>);

    /// Whether `shards = 1` should still run the store protocol.
    /// `FleetExecutor` says yes — its admission-only semantics make the
    /// protocol provably equivalent; `WindowExecutor` says no — its
    /// native path reconfigures residents, which the admission-only
    /// store cannot express, so bit-identity demands delegation.
    fn store_protocol_at_one(&self) -> bool;

    /// The persistent cross-window store, when the backend keeps one.
    fn persistent_store(&self) -> Option<Arc<PlacementStore>>;

    /// A fresh admission-only store for this window, materialised from
    /// the live state (residents pinned, offline servers zeroed). Only
    /// called when [`Self::persistent_store`] is `None`.
    fn admission_store(&self) -> Arc<PlacementStore>;

    /// The flight correlation key bound to a registered tenant.
    fn flight_key_of(&self, tid: TenantId) -> u64;

    /// Applies one committed admission (capacity already reserved by the
    /// store commit). `placement` holds one server per VM of request
    /// `req_index`, in VM order. Returns denied network flows (0 for
    /// backends without a fabric model).
    fn shard_admit(
        &mut self,
        tid: TenantId,
        arrivals: &RequestBatch,
        req_index: usize,
        placement: &[ServerId],
        window: u64,
    ) -> usize;

    /// Applies one final rejection (solver-rejected or retry budget
    /// exhausted).
    fn shard_reject(&mut self, tid: TenantId, window: u64);

    /// Closes the window's books after all admissions/rejections were
    /// applied; advances the backend's window counter.
    fn shard_finish(
        &mut self,
        arrivals: usize,
        admitted: usize,
        rejected: usize,
        denied_flows: usize,
        solve_time: Duration,
    ) -> WindowReport;

    /// Assigns sequential tenant ids to an arrival batch.
    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId>;
    /// Binds tenant ids to flight correlation keys.
    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]);
    /// Departs one tenant; `false` when not resident.
    fn depart_tenant(&mut self, id: TenantId) -> bool;
    /// Fails one server; `false` when already offline.
    fn force_failure(&mut self, server: ServerId) -> bool;
    /// Repairs one server; `false` when healthy.
    fn force_repair(&mut self, server: ServerId) -> bool;
    /// Number of servers.
    fn server_count(&self) -> usize;
    /// Resident requests.
    fn resident_requests(&self) -> usize;
}

/// One shard's solved slice of a round.
struct ShardSolution {
    problem: AllocationProblem,
    assignment: Assignment,
    /// Per local request: did the solver accept it?
    accepted: Vec<bool>,
    /// Wall time of this shard's solve, measured individually.
    solve_time: Duration,
}

fn solve_shard(
    allocator: &dyn Allocator,
    arrivals: &RequestBatch,
    residual: &Infrastructure,
    indices: &[usize],
    full_batch: bool,
) -> ShardSolution {
    let batch = if full_batch {
        arrivals.clone()
    } else {
        arrivals.subset(indices)
    };
    let problem = AllocationProblem::new(residual.clone(), batch, None);
    let start = Instant::now();
    let outcome = allocator.allocate(&problem);
    let solve_time = start.elapsed();
    // Same admission predicate as the native paths: a request is
    // accepted iff every one of its VMs is assigned.
    let mut accepted = vec![false; problem.batch().request_count()];
    for r in problem.accepted_requests(&outcome.assignment) {
        accepted[r.index()] = true;
    }
    // Score the shard's solution with its own owned evaluator — each
    // shard gets a private DeltaEvaluator over its private problem, so
    // no lock is ever held across a solve (the Mutex evaluator *pools*
    // in cpo-core remain, but only for intra-solve rayon scoring).
    if flight::is_enabled() || cpo_obs::series::is_enabled() {
        let ev = DeltaEvaluator::new(&problem, outcome.assignment.clone());
        let score = ev.score();
        cpo_obs::gauge_set("shard.solution_cost", score.total_cost());
        cpo_obs::counter_add("shard.solves", 1);
    }
    ShardSolution {
        assignment: outcome.assignment,
        problem,
        accepted,
        solve_time,
    }
}

/// Solves one round's partitions, on scoped threads when the host has
/// the cores for it, serially otherwise. Either way each shard's solve
/// is timed individually, so the critical-path (max-over-shards) window
/// service time is honest on any host.
fn solve_round(
    allocator: &dyn Allocator,
    arrivals: &RequestBatch,
    snapshot: &StoreSnapshot,
    parts: &[Vec<usize>],
    masks: &[Option<Vec<bool>>],
) -> Vec<ShardSolution> {
    let full_batch = parts.len() == 1 && parts[0].len() == arrivals.request_count();
    let solve_one = |p: usize, indices: &[usize]| match &masks[p] {
        Some(mask) => {
            let masked = masked_residual(&snapshot.residual, mask);
            solve_shard(allocator, arrivals, &masked, indices, false)
        }
        None => solve_shard(allocator, arrivals, &snapshot.residual, indices, full_batch),
    };
    let parallel =
        parts.len() > 1 && std::thread::available_parallelism().is_ok_and(|p| p.get() >= 2);
    if parallel {
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(p, indices)| s.spawn(move || solve_one(p, indices)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard solver panicked"))
                .collect()
        })
    } else {
        parts
            .iter()
            .enumerate()
            .map(|(p, indices)| solve_one(p, indices))
            .collect()
    }
}

/// Partitions incoming requests across N worker shards solving on store
/// snapshots, resubmitting bounced conflicts with a bounded retry
/// budget. See the module docs for the protocol.
pub struct ShardedScheduler<B> {
    backend: B,
    config: ShardConfig,
}

impl<B: ShardBackend> ShardedScheduler<B> {
    /// Wraps `backend` with sharding `config`.
    pub fn new(backend: B, config: ShardConfig) -> Self {
        Self { backend, config }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the scheduler, returning the wrapped backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The sharding parameters.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Executes one window: native delegation when unsharded (unless the
    /// backend opts into the store protocol at one shard), otherwise the
    /// snapshot → solve → commit/bounce/retry loop. Returns the report
    /// plus admitted tenant ids in arrival order.
    pub fn execute_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        arrival_tenant_ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        if self.config.shards <= 1 && !self.backend.store_protocol_at_one() {
            return self
                .backend
                .native_window(allocator, arrivals, arrival_tenant_ids);
        }
        let window = self.backend.window();
        let mut sp = cpo_obs::span!("shard.window", window = window);
        let store = self
            .backend
            .persistent_store()
            .unwrap_or_else(|| self.backend.admission_store());
        let n = arrivals.request_count();
        let metrics_before = store.metrics();

        let mut remaining: Vec<usize> = (0..n).collect();
        let mut admitted_ids: Vec<TenantId> = Vec::new();
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        let mut denied_flows = 0usize;
        let mut solve_critical = Duration::ZERO;
        let mut commit_wall = Duration::ZERO;
        let mut round = 0u64;

        while !remaining.is_empty() {
            let last_round = round >= self.config.retry_budget as u64;
            let snapshot = store.snapshot();
            let shard_count = self.config.shards.clamp(1, remaining.len());
            let (parts, slots, masks) = partition_round(
                self.config.partition,
                &snapshot.residual,
                arrivals,
                &remaining,
                shard_count,
                !last_round,
            );
            let prof_on = cpo_obs::prof::is_enabled();
            let solve_start_us = if prof_on { cpo_obs::now_us() } else { 0 };
            let solutions = solve_round(allocator, arrivals, &snapshot, &parts, &masks);
            if prof_on {
                let shard_us: Vec<u64> = solutions
                    .iter()
                    .map(|s| s.solve_time.as_micros() as u64)
                    .collect();
                cpo_obs::prof::solve_phase(
                    window,
                    round,
                    solve_start_us,
                    cpo_obs::now_us(),
                    &shard_us,
                );
            }
            solve_critical += solutions
                .iter()
                .map(|s| s.solve_time)
                .max()
                .unwrap_or(Duration::ZERO);

            // Commit phase: decide every remaining request in global
            // arrival order, sequentially against the live store.
            let commit_start = Instant::now();
            let mut bounced: Vec<usize> = Vec::new();
            for (p, &i) in remaining.iter().enumerate() {
                let (part, local) = slots[p];
                let sol = &solutions[part];
                let local = RequestId(local);
                let tid = arrival_tenant_ids[i];
                if !sol.accepted[local.index()] {
                    if masks[part].is_some() {
                        // A masked solve only saw the regions its shard
                        // owns — its rejection is not evidence the fleet
                        // is full. Bounce like a conflict; the final
                        // round solves unmasked and decides for real.
                        bounced.push(i);
                    } else {
                        // Unmasked solver rejection is final: the
                        // residual only shrinks within a window.
                        self.backend.shard_reject(tid, window);
                        rejected += 1;
                    }
                    continue;
                }
                let local_req = sol.problem.batch().request(local);
                let placement: Vec<ServerId> = local_req
                    .vms
                    .iter()
                    .map(|&k| sol.assignment.server_of(k).expect("accepted ⇒ placed"))
                    .collect();
                let placements: Vec<(ServerId, &[f64])> = local_req
                    .vms
                    .iter()
                    .zip(&placement)
                    .map(|(&k, &j)| (j, sol.problem.batch().vm(k).demand.as_slice()))
                    .collect();
                let ctx = CommitCtx {
                    key: self.backend.flight_key_of(tid),
                    tenant: tid.0,
                    window,
                    round,
                };
                match store.try_commit(&placements, &snapshot.versions, &ctx) {
                    Ok(()) => {
                        denied_flows += self
                            .backend
                            .shard_admit(tid, arrivals, i, &placement, window);
                        admitted += 1;
                        admitted_ids.push(tid);
                    }
                    Err(_) if last_round => {
                        self.backend.shard_reject(tid, window);
                        rejected += 1;
                    }
                    Err(_) => bounced.push(i),
                }
            }
            let commit_elapsed = commit_start.elapsed();
            commit_wall += commit_elapsed;
            if prof_on {
                cpo_obs::prof::commit_phase(window, round, commit_elapsed.as_micros() as u64);
            }
            remaining = bounced;
            round += 1;
        }

        let retry_depth_max = round.saturating_sub(1);
        let delta = store.metrics().since(&metrics_before);
        let conflict_rate = delta.conflict_rate();
        cpo_obs::counter_add("store.commits", delta.commits);
        cpo_obs::counter_add("store.conflicts", delta.conflicts);
        cpo_obs::gauge_set("store.conflict_rate", conflict_rate);
        if cpo_obs::series::is_enabled() {
            cpo_obs::series::record("store.commits", window, delta.commits as f64);
            cpo_obs::series::record("store.conflicts", window, delta.conflicts as f64);
            cpo_obs::series::record("store.conflict_rate", window, conflict_rate);
            cpo_obs::series::record("store.retry_depth_max", window, retry_depth_max as f64);
            cpo_obs::series::record_timing(
                "store.commit_latency_us",
                window,
                commit_wall.as_micros() as f64,
            );
        }
        // Admitted ids in arrival order regardless of the round a
        // request finally committed in.
        admitted_ids.sort_by_key(|t| t.0);
        // The window's modeled service time is the critical path: the
        // slowest shard of each round plus the sequential commit phase.
        let service_time = solve_critical + commit_wall;
        let report = self
            .backend
            .shard_finish(n, admitted, rejected, denied_flows, service_time);
        sp.field("admitted", admitted)
            .field("rejected", rejected)
            .field("conflicts", delta.conflicts as usize)
            .field("rounds", round as usize);
        (report, admitted_ids)
    }
}

impl ShardBackend for FleetExecutor {
    fn window(&self) -> u64 {
        FleetExecutor::window(self)
    }

    fn native_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        arrival_tenant_ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        self.execute_window(allocator, arrivals, arrival_tenant_ids)
    }

    fn store_protocol_at_one(&self) -> bool {
        // Admission-only semantics: the store protocol at one shard is
        // provably bit-identical to the native path, so run it — the
        // equivalence suite pins that claim.
        true
    }

    fn persistent_store(&self) -> Option<Arc<PlacementStore>> {
        Some(Arc::clone(self.store()))
    }

    fn admission_store(&self) -> Arc<PlacementStore> {
        Arc::clone(self.store())
    }

    fn flight_key_of(&self, tid: TenantId) -> u64 {
        self.flight_key(tid.0)
    }

    fn shard_admit(
        &mut self,
        tid: TenantId,
        arrivals: &RequestBatch,
        req_index: usize,
        placement: &[ServerId],
        window: u64,
    ) -> usize {
        let req = arrivals.request(RequestId(req_index));
        // reserve = false: the optimistic commit already carved the
        // placement out of the store.
        self.admit_request(
            tid,
            window,
            arrivals,
            req,
            |k| {
                let pos = req
                    .vms
                    .iter()
                    .position(|&v| v == k)
                    .expect("vm belongs to request");
                placement[pos].index() as u32
            },
            false,
        );
        0
    }

    fn shard_reject(&mut self, tid: TenantId, window: u64) {
        self.reject_request(tid, window);
    }

    fn shard_finish(
        &mut self,
        arrivals: usize,
        admitted: usize,
        rejected: usize,
        _denied_flows: usize,
        solve_time: Duration,
    ) -> WindowReport {
        self.finish_window(arrivals, admitted, rejected, solve_time)
    }

    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        FleetExecutor::register_arrivals(self, arrivals)
    }

    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        FleetExecutor::bind_request_keys(self, ids, keys)
    }

    fn depart_tenant(&mut self, id: TenantId) -> bool {
        FleetExecutor::depart_tenant(self, id)
    }

    fn force_failure(&mut self, server: ServerId) -> bool {
        FleetExecutor::force_failure(self, server)
    }

    fn force_repair(&mut self, server: ServerId) -> bool {
        FleetExecutor::force_repair(self, server)
    }

    fn server_count(&self) -> usize {
        FleetExecutor::server_count(self)
    }

    fn resident_requests(&self) -> usize {
        FleetExecutor::resident_requests(self)
    }
}

impl ShardBackend for WindowExecutor {
    fn window(&self) -> u64 {
        WindowExecutor::window(self)
    }

    fn native_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        arrival_tenant_ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        self.execute(
            allocator,
            arrivals,
            arrival_tenant_ids,
            LifetimePolicy::External,
        )
    }

    fn store_protocol_at_one(&self) -> bool {
        // The native path reconfigures residents (migrations); the
        // admission-only store cannot express that, so bit-identity at
        // one shard demands native delegation.
        false
    }

    fn persistent_store(&self) -> Option<Arc<PlacementStore>> {
        None
    }

    fn admission_store(&self) -> Arc<PlacementStore> {
        Arc::new(PlacementStore::from_residual(self.admission_residual()))
    }

    fn flight_key_of(&self, tid: TenantId) -> u64 {
        self.flight_key(tid)
    }

    fn shard_admit(
        &mut self,
        tid: TenantId,
        arrivals: &RequestBatch,
        req_index: usize,
        placement: &[ServerId],
        window: u64,
    ) -> usize {
        let req = arrivals.request(RequestId(req_index));
        self.apply_admission(
            tid,
            arrivals,
            req,
            placement.to_vec(),
            LifetimePolicy::External,
            window,
        )
    }

    fn shard_reject(&mut self, tid: TenantId, window: u64) {
        self.apply_rejection(tid, window);
    }

    fn shard_finish(
        &mut self,
        arrivals: usize,
        admitted: usize,
        rejected: usize,
        denied_flows: usize,
        solve_time: Duration,
    ) -> WindowReport {
        // Sharded windows over the resident-pinning store never migrate.
        self.finish_window(WindowTotals {
            arrivals,
            admitted,
            rejected,
            migrations: 0,
            migration_cost: 0.0,
            denied_flows,
            solve_time,
        })
    }

    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        WindowExecutor::register_arrivals(self, arrivals)
    }

    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        WindowExecutor::bind_request_keys(self, ids, keys)
    }

    fn depart_tenant(&mut self, id: TenantId) -> bool {
        WindowExecutor::depart_tenant(self, id)
    }

    fn force_failure(&mut self, server: ServerId) -> bool {
        WindowExecutor::force_failure(self, server)
    }

    fn force_repair(&mut self, server: ServerId) -> bool {
        WindowExecutor::force_repair(self, server)
    }

    fn server_count(&self) -> usize {
        self.infra().server_count()
    }

    fn resident_requests(&self) -> usize {
        self.tenants().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;

    fn fleet(servers: usize) -> FleetExecutor {
        FleetExecutor::new(Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        ))
    }

    fn batch(requests: usize, vms_each: usize) -> RequestBatch {
        let mut b = RequestBatch::new();
        for _ in 0..requests {
            b.push_request(vec![vm_spec(2.0, 4096.0, 40.0); vms_each], vec![]);
        }
        b
    }

    fn run_window(
        sched: &mut ShardedScheduler<FleetExecutor>,
        arrivals: &RequestBatch,
    ) -> (WindowReport, Vec<TenantId>) {
        let ids = sched.backend_mut().register_arrivals(arrivals);
        sched.execute_window(&RoundRobinAllocator, arrivals, &ids)
    }

    #[test]
    fn single_shard_runs_store_protocol_without_conflicts() {
        let mut sched = ShardedScheduler::new(fleet(4), ShardConfig::default());
        let arrivals = batch(3, 2);
        let (report, admitted) = run_window(&mut sched, &arrivals);
        assert_eq!(report.admitted, 3);
        assert_eq!(admitted.len(), 3);
        let m = sched.backend().store().metrics();
        assert_eq!(m.commits, 3);
        assert_eq!(m.conflicts, 0, "one shard never races itself");
        assert!(sched.backend().verify().is_ok());
    }

    #[test]
    fn multi_shard_window_stays_feasible_and_deterministic() {
        let run = |shards: usize| {
            let mut sched = ShardedScheduler::new(
                fleet(3),
                ShardConfig {
                    shards,
                    retry_budget: 3,
                    // Round-robin deliberately: this test exercises the
                    // commit races region hashing is designed to avoid.
                    partition: PartitionStrategy::RoundRobin,
                },
            );
            // More demand than fits: forces both rejections and, with
            // several shards, genuine commit races.
            let arrivals = batch(12, 2);
            let (report, admitted) = run_window(&mut sched, &arrivals);
            assert!(sched.backend().verify().is_ok());
            assert_eq!(report.admitted + report.rejected, 12);
            let ids: Vec<u64> = admitted.iter().map(|t| t.0).collect();
            (report.admitted, ids, sched.backend().store().metrics())
        };
        let (a1, ids1, m1) = run(4);
        let (a2, ids2, m2) = run(4);
        assert_eq!(a1, a2, "double-run determinism");
        assert_eq!(ids1, ids2);
        assert_eq!(m1, m2, "conflict counters are deterministic too");
        let sorted: Vec<u64> = {
            let mut v = ids1.clone();
            v.sort_unstable();
            v
        };
        assert_eq!(ids1, sorted, "admitted ids reported in arrival order");
    }

    #[test]
    fn region_hash_partitioning_cuts_conflicts_versus_round_robin() {
        // Two datacenters, contended servers: round-robin spreads each
        // region's contenders over all shards (maximal racing), while
        // hash-by-region colocates them into one shard that solves them
        // jointly against the snapshot.
        let run = |partition: PartitionStrategy| {
            let infra = Infrastructure::new(
                AttrSet::standard(),
                vec![
                    ("dc0".into(), ServerProfile::commodity(3).build_many(2)),
                    ("dc1".into(), ServerProfile::commodity(3).build_many(2)),
                ],
            );
            let mut sched = ShardedScheduler::new(
                FleetExecutor::new(infra),
                ShardConfig {
                    shards: 4,
                    retry_budget: 3,
                    partition,
                },
            );
            // Demand exactly fills the fleet (5 of these VMs per server,
            // 4 servers): round-robin partitioning has every shard spread
            // from server 0, overdrawing the early servers at commit time
            // even though everything fits; region hashing solves each
            // datacenter's contenders jointly inside its own masked view.
            let mut arrivals = RequestBatch::new();
            for _ in 0..20 {
                arrivals.push_request(vec![vm_spec(4.0, 8_192.0, 40.0)], vec![]);
            }
            let (report, _) = run_window(&mut sched, &arrivals);
            assert!(sched.backend().verify().is_ok());
            let m = sched.backend().store().metrics();
            (report.admitted, m.conflicts)
        };
        let (admitted_rr, conflicts_rr) = run(PartitionStrategy::RoundRobin);
        let (admitted_rh, conflicts_rh) = run(PartitionStrategy::RegionHash);
        assert!(conflicts_rr > 0, "round-robin sharding must actually race");
        assert!(
            admitted_rh >= admitted_rr,
            "region hashing must not lose admissions: {admitted_rh} vs {admitted_rr}"
        );
        assert!(
            conflicts_rh < conflicts_rr,
            "region hashing must bounce less: {conflicts_rh} vs {conflicts_rr}"
        );
    }

    #[test]
    fn region_hash_partitioning_is_deterministic() {
        let run = || {
            let mut sched = ShardedScheduler::new(
                fleet(3),
                ShardConfig {
                    shards: 4,
                    retry_budget: 3,
                    partition: PartitionStrategy::RegionHash,
                },
            );
            let arrivals = batch(12, 2);
            let (report, admitted) = run_window(&mut sched, &arrivals);
            let ids: Vec<u64> = admitted.iter().map(|t| t.0).collect();
            (report.admitted, ids, sched.backend().store().metrics())
        };
        let (a1, ids1, m1) = run();
        let (a2, ids2, m2) = run();
        assert_eq!(a1, a2);
        assert_eq!(ids1, ids2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn conflicted_requests_terminate_within_budget() {
        // One server, many shards, every request wants most of it: a
        // conflict storm. Everyone must terminate as admitted or
        // rejected, and the books must balance.
        let mut sched = ShardedScheduler::new(
            fleet(1),
            ShardConfig {
                shards: 6,
                retry_budget: 2,
                partition: PartitionStrategy::RoundRobin,
            },
        );
        let mut arrivals = RequestBatch::new();
        for _ in 0..12 {
            arrivals.push_request(vec![vm_spec(12.0, 8192.0, 80.0)], vec![]);
        }
        let (report, _) = run_window(&mut sched, &arrivals);
        assert_eq!(report.admitted + report.rejected, 12);
        assert!(report.admitted >= 1, "progress: at least one commit");
        assert!(sched.backend().verify().is_ok());
        let m = sched.backend().store().metrics();
        assert_eq!(m.capacity_conflicts, 0, "no solver-infeasible commits");
    }

    #[test]
    fn window_executor_backend_shards_admission_only() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let exec = WindowExecutor::new(infra, crate::executor::SimConfig::default());
        let mut sched = ShardedScheduler::new(
            exec,
            ShardConfig {
                shards: 2,
                retry_budget: 2,
                ..ShardConfig::default()
            },
        );
        let arrivals = batch(6, 1);
        let ids = sched.backend_mut().register_arrivals(&arrivals);
        let (report, admitted) = sched.execute_window(&RoundRobinAllocator, &arrivals, &ids);
        assert_eq!(report.migrations, 0, "sharded admission never migrates");
        assert_eq!(report.admitted, admitted.len());
        assert_eq!(report.admitted + report.rejected, 6);
        assert!(sched.backend().verify_state().is_feasible());
        // A second window sees the residents pinned.
        let more = batch(2, 1);
        let ids2 = sched.backend_mut().register_arrivals(&more);
        let (r2, _) = sched.execute_window(&RoundRobinAllocator, &more, &ids2);
        assert_eq!(r2.window, 1);
        assert!(sched.backend().verify_state().is_feasible());
    }
}
