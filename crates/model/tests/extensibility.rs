//! The paper: "our model can be extended to other specific attributes to
//! provider resources". This suite drives the whole model with a
//! four-attribute set (CPU, RAM, disk, network bandwidth) and a custom
//! fifth (GPU units) — constraints, loads, QoS and costs must all honour
//! the extra dimensions.

use cpo_model::attr::{AttrId, AttrKind, AttrSet};
use cpo_model::prelude::*;

fn extended_attrs() -> AttrSet {
    AttrSet::new(vec![
        AttrKind::Cpu,
        AttrKind::Ram,
        AttrKind::Disk,
        AttrKind::NetBandwidth,
        AttrKind::Custom(1), // GPU units
    ])
}

fn server_5d(net: f64, gpu: f64) -> Server {
    Server {
        capacity: vec![32.0, 131_072.0, 2_048.0, net, gpu],
        factor: vec![0.9; 5],
        opex: 12.0,
        usage_cost: 1.0,
        max_load: vec![0.8; 5],
        max_qos: vec![0.99; 5],
    }
}

fn vm_5d(cpu: f64, net: f64, gpu: f64) -> VmSpec {
    VmSpec {
        demand: vec![cpu, 4_096.0, 40.0, net, gpu],
        qos_guarantee: 0.95,
        downtime_cost: 5.0,
        migration_cost: 1.0,
        revenue: 10.0,
    }
}

#[test]
fn five_attribute_problem_enforces_every_dimension() {
    let infra = Infrastructure::new(
        extended_attrs(),
        vec![(
            "dc".into(),
            vec![server_5d(10_000.0, 4.0), server_5d(10_000.0, 0.0)],
        )],
    );
    let mut batch = RequestBatch::new();
    // GPU VM: only server 0 has GPUs.
    batch.push_request(vec![vm_5d(4.0, 1_000.0, 2.0)], vec![]);
    // Network-hungry VM: fits either server on net (9000 effective).
    batch.push_request(vec![vm_5d(4.0, 8_000.0, 0.0)], vec![]);
    let problem = AllocationProblem::new(infra, batch, None);
    assert_eq!(problem.h(), 5);

    // GPU VM on the GPU-less server: capacity violation on Custom(1).
    let mut wrong = Assignment::unassigned(2);
    wrong.assign(VmId(0), ServerId(1));
    wrong.assign(VmId(1), ServerId(0));
    let report = problem.check(&wrong);
    assert!(!report.is_feasible());
    assert!(report.violations().iter().any(|v| matches!(
        v,
        cpo_model::constraints::Violation::Capacity { attr, .. } if *attr == AttrId(4)
    )));

    // Correct placement is feasible.
    let mut right = Assignment::unassigned(2);
    right.assign(VmId(0), ServerId(0));
    right.assign(VmId(1), ServerId(1));
    assert!(problem.is_feasible(&right));
}

#[test]
fn network_attribute_saturates_like_any_other() {
    let infra = Infrastructure::new(
        extended_attrs(),
        vec![("dc".into(), vec![server_5d(10_000.0, 8.0)])],
    );
    let mut batch = RequestBatch::new();
    // Two VMs of 5 Gbit each: 10 > 9 effective → can't share the server.
    batch.push_request(vec![vm_5d(1.0, 5_000.0, 0.0)], vec![]);
    batch.push_request(vec![vm_5d(1.0, 5_000.0, 0.0)], vec![]);
    let problem = AllocationProblem::new(infra, batch, None);
    let mut a = Assignment::unassigned(2);
    a.assign(VmId(0), ServerId(0));
    a.assign(VmId(1), ServerId(0));
    let tracker = problem.tracker(&a);
    let over = tracker.overloads(ServerId(0), problem.infra());
    assert_eq!(over.len(), 1);
    assert_eq!(
        over[0].0,
        AttrId(3),
        "the network dimension must be the binding one"
    );
}

#[test]
fn qos_degrades_on_the_loaded_custom_attribute() {
    use cpo_model::qos::worst_qos;
    let infra = Infrastructure::new(
        extended_attrs(),
        vec![("dc".into(), vec![server_5d(10_000.0, 8.0)])],
    );
    let mut batch = RequestBatch::new();
    // 6.5 of 7.2 effective GPU → load 0.90 > knee 0.8 → QoS drops.
    batch.push_request(vec![vm_5d(1.0, 100.0, 6.5)], vec![]);
    let problem = AllocationProblem::new(infra, batch, None);
    let mut a = Assignment::unassigned(1);
    a.assign(VmId(0), ServerId(0));
    let tracker = problem.tracker(&a);
    let q = worst_qos(&tracker, ServerId(0), problem.infra());
    assert!(q < 0.99, "GPU load past the knee must degrade QoS, got {q}");
    // And the downtime term picks it up (guarantee 0.95 may or may not be
    // broken depending on the curve; assert the objective is finite and
    // consistent either way).
    let z = problem.evaluate(&a);
    assert!(z.downtime >= 0.0 && z.downtime.is_finite());
}

#[test]
fn ilp_covers_extended_attributes() {
    use cpo_model::ilp::{IlpFormulation, RowKind};
    let infra = Infrastructure::new(
        extended_attrs(),
        vec![("dc".into(), vec![server_5d(10_000.0, 4.0); 2])],
    );
    let mut batch = RequestBatch::new();
    batch.push_request(vec![vm_5d(2.0, 500.0, 1.0); 2], vec![]);
    let problem = AllocationProblem::new(infra, batch, None);
    let ilp = IlpFormulation::from_problem(&problem);
    let capacity_rows = ilp
        .row_counts()
        .into_iter()
        .find(|(k, _)| *k == RowKind::Capacity)
        .map(|(_, c)| c)
        .unwrap();
    assert_eq!(
        capacity_rows,
        2 * 5,
        "one capacity row per server × attribute"
    );
}
