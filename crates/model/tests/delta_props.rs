//! Differential property test for the delta evaluator: after ANY sequence
//! of apply / unassign / peek / undo operations on a randomised problem
//! (mixed rule kinds, QoS-sensitive VMs, optional previous allocation),
//! the evaluator's score must be *bit-identical* to the model's full
//! check/evaluate pair, and its maintained state (tracker cells, hosted
//! counts, feasibility flags, faulty set) must match a from-scratch
//! [`DeltaEvaluator::rebuild`].

use cpo_model::attr::AttrSet;
use cpo_model::delta::{DeltaEvaluator, MoveScore};
use cpo_model::prelude::*;
use proptest::prelude::*;

/// Bit patterns of a score: the comparison currency of this suite.
fn bits(s: &MoveScore) -> [u64; 4] {
    let z = s.objectives.as_array();
    [
        s.violation.to_bits(),
        z[0].to_bits(),
        z[1].to_bits(),
        z[2].to_bits(),
    ]
}

/// Strategy: a small rule-rich problem. Roughly half the VMs carry a QoS
/// guarantee (exercising the downtime-penalty cache), migration costs are
/// nonzero, and problems optionally have a partial previous allocation
/// (exercising the moved-set and the -0.0 fold of `migration_cost`).
fn problem_strategy() -> impl Strategy<Value = AllocationProblem> {
    (2usize..4, 2usize..5, 1u64..10_000, 0u8..2).prop_map(|(m_per_dc, reqs, seed, prev_flag)| {
        let with_prev = prev_flag == 1;
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), profile.build_many(m_per_dc)),
                ("dc1".into(), profile.build_many(m_per_dc)),
            ],
        );
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let kinds = [
            AffinityKind::SameServer,
            AffinityKind::SameDatacenter,
            AffinityKind::DifferentServer,
            AffinityKind::DifferentDatacenter,
        ];
        let mut batch = RequestBatch::new();
        for _ in 0..reqs {
            let n_vms = 1 + next() % 3;
            let base = batch.vm_count();
            let mut vms = Vec::new();
            for _ in 0..n_vms {
                let cpu = 1.0 + (next() % 8) as f64;
                let mut spec = vm_spec(cpu, cpu * 512.0, cpu * 10.0);
                if next() % 2 == 0 {
                    spec.qos_guarantee = 0.9 + (next() % 10) as f64 / 100.0;
                    spec.downtime_cost = (next() % 9) as f64;
                }
                spec.migration_cost = (next() % 5) as f64;
                vms.push(spec);
            }
            let mut rules = Vec::new();
            if n_vms >= 2 && next() % 2 == 0 {
                rules.push(AffinityRule::new(
                    kinds[next() % kinds.len()],
                    vec![VmId(base), VmId(base + 1)],
                ));
            }
            batch.push_request(vms, rules);
        }
        let n = batch.vm_count();
        let m = 2 * m_per_dc;
        let previous = with_prev.then(|| {
            let mut prev = Assignment::unassigned(n);
            for k in 0..n {
                if next() % 4 != 0 {
                    prev.assign(VmId(k), ServerId(next() % m));
                }
            }
            prev
        });
        AllocationProblem::new(infra, batch, previous)
    })
}

/// Strategy: a problem, a (possibly partial) starting assignment encoded
/// as genes where `m` means unassigned, and an operation walk. Walk ops:
/// 0 = apply, 1 = unassign, 2 = peek-then-apply-then-undo, 3+ = undo.
#[allow(clippy::type_complexity)]
fn scenario() -> impl Strategy<Value = (AllocationProblem, Vec<usize>, Vec<(u8, usize, usize)>)> {
    problem_strategy().prop_flat_map(|p| {
        let (m, n) = (p.m(), p.n());
        (
            Just(p),
            proptest::collection::vec(0usize..=m, n),
            proptest::collection::vec((0u8..4, 0usize..n, 0usize..m), 0..40),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The delta path is a bit-exact replacement for the full recompute:
    /// after any operation walk, score == oracle and state == rebuild.
    #[test]
    fn delta_walk_is_bit_identical_to_full_recompute(
        (p, genes, walk) in scenario()
    ) {
        let m = p.m();
        let mut start = Assignment::unassigned(p.n());
        for (k, &g) in genes.iter().enumerate() {
            if g < m {
                start.assign(VmId(k), ServerId(g));
            }
        }
        let mut ev = DeltaEvaluator::new(&p, start);

        for &(op, k, j) in &walk {
            let (k, j) = (VmId(k), ServerId(j));
            match op {
                0 => {
                    ev.apply(k, j);
                }
                1 => {
                    ev.unassign_vm(k);
                }
                2 => {
                    // peek must predict the post-apply score exactly and
                    // leave no trace after the undo.
                    let before = ev.score();
                    let peek = ev.peek_relocate(k, j);
                    prop_assert_eq!(bits(&before), bits(&ev.score()), "peek disturbed state");
                    ev.apply(k, j);
                    prop_assert_eq!(bits(&peek), bits(&ev.score()), "peek != apply");
                    prop_assert!(ev.undo());
                    prop_assert_eq!(bits(&before), bits(&ev.score()), "undo did not restore");
                }
                _ => {
                    ev.undo();
                }
            }
        }

        // Oracle: the model's full check/evaluate pair on the final state.
        let a = ev.assignment().clone();
        let tracker = p.tracker(&a);
        let z = p.evaluate_with_tracker(&a, &tracker);
        let report = p.check_with_tracker(&a, &tracker);
        let score = ev.score();
        prop_assert_eq!(
            score.violation.to_bits(),
            report.degree().to_bits(),
            "violation bits: delta {} vs full {}",
            score.violation,
            report.degree()
        );
        let full = z.as_array();
        for (i, (d, f)) in score.objectives.as_array().iter().zip(full.iter()).enumerate() {
            prop_assert_eq!(d.to_bits(), f.to_bits(), "objective {}: delta {} vs full {}", i, d, f);
        }

        // State: bit-equal to a from-scratch rebuild.
        let rebuilt = ev.rebuild();
        prop_assert_eq!(bits(&score), bits(&rebuilt.score()));
        for j in p.infra().server_ids() {
            prop_assert_eq!(ev.tracker().hosted(j), rebuilt.tracker().hosted(j));
            for l in p.infra().attrs().ids() {
                prop_assert_eq!(
                    ev.tracker().used(j, l).to_bits(),
                    rebuilt.tracker().used(j, l).to_bits(),
                    "tracker cell ({:?}, {:?})", j, l
                );
            }
        }
        prop_assert_eq!(ev.is_feasible(), rebuilt.is_feasible());
        prop_assert_eq!(ev.faulty_vms(), rebuilt.faulty_vms());
        prop_assert_eq!(ev.is_feasible(), p.is_feasible(ev.assignment()));
    }
}
