//! [`AllocationProblem`] — the complete model instance bundling the
//! provider substrate, the consumer demand, and the previous allocation
//! `X^t`; the single object every solver in the workspace consumes.

use crate::assignment::Assignment;
use crate::constraints::{self, ViolationReport};
use crate::cost::{self, ObjectiveVector};
use crate::infrastructure::{Infrastructure, ServerId};
use crate::load::LoadTracker;
use crate::request::{RequestBatch, RequestId, VmId};

/// A complete instance of the paper's cloud resource allocation problem.
#[derive(Clone, Debug)]
pub struct AllocationProblem {
    infra: Infrastructure,
    batch: RequestBatch,
    /// The running allocation `X^t`; `None` for an initial placement.
    previous: Option<Assignment>,
}

impl AllocationProblem {
    /// Builds a problem instance, validating the batch against the
    /// infrastructure's attribute set.
    ///
    /// # Panics
    /// Panics when the batch and infrastructure disagree on attribute
    /// count or when `previous` covers a different VM count.
    pub fn new(infra: Infrastructure, batch: RequestBatch, previous: Option<Assignment>) -> Self {
        if batch.vm_count() > 0 {
            batch
                .validate(infra.attr_count())
                .unwrap_or_else(|e| panic!("invalid request batch: {e}"));
        }
        if let Some(prev) = &previous {
            assert_eq!(
                prev.len(),
                batch.vm_count(),
                "previous allocation covers {} VMs, batch has {}",
                prev.len(),
                batch.vm_count()
            );
        }
        Self {
            infra,
            batch,
            previous,
        }
    }

    /// The provider substrate.
    #[inline]
    pub fn infra(&self) -> &Infrastructure {
        &self.infra
    }

    /// The consumer demand batch.
    #[inline]
    pub fn batch(&self) -> &RequestBatch {
        &self.batch
    }

    /// The running allocation `X^t`, if any.
    #[inline]
    pub fn previous(&self) -> Option<&Assignment> {
        self.previous.as_ref()
    }

    /// Problem dimensions `(g, m, n, h)` as in Table I.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (
            self.infra.datacenter_count(),
            self.infra.server_count(),
            self.batch.vm_count(),
            self.infra.attr_count(),
        )
    }

    /// Number of datacenters `g`.
    pub fn g(&self) -> usize {
        self.infra.datacenter_count()
    }

    /// Number of servers `m`.
    pub fn m(&self) -> usize {
        self.infra.server_count()
    }

    /// Number of requested resources `n`.
    pub fn n(&self) -> usize {
        self.batch.vm_count()
    }

    /// Number of attributes `h`.
    pub fn h(&self) -> usize {
        self.infra.attr_count()
    }

    /// Evaluates the Eq. 15 objective vector for an assignment.
    pub fn evaluate(&self, assignment: &Assignment) -> ObjectiveVector {
        cost::evaluate(assignment, &self.batch, &self.infra, self.previous.as_ref())
    }

    /// Objective evaluation reusing a caller-maintained tracker.
    pub fn evaluate_with_tracker(
        &self,
        assignment: &Assignment,
        tracker: &LoadTracker,
    ) -> ObjectiveVector {
        cost::evaluate_with_tracker(
            assignment,
            tracker,
            &self.batch,
            &self.infra,
            self.previous.as_ref(),
        )
    }

    /// Full constraint check (Eqs. 16–21).
    pub fn check(&self, assignment: &Assignment) -> ViolationReport {
        constraints::check(assignment, &self.batch, &self.infra)
    }

    /// Constraint check reusing a tracker.
    pub fn check_with_tracker(
        &self,
        assignment: &Assignment,
        tracker: &LoadTracker,
    ) -> ViolationReport {
        constraints::check_with_tracker(assignment, tracker, &self.batch, &self.infra)
    }

    /// Fast feasibility test.
    pub fn is_feasible(&self, assignment: &Assignment) -> bool {
        constraints::is_feasible(assignment, &self.batch, &self.infra)
    }

    /// Builds a load tracker for an assignment.
    pub fn tracker(&self, assignment: &Assignment) -> LoadTracker {
        LoadTracker::from_assignment(assignment, &self.batch, &self.infra)
    }

    /// Builds an incremental [`DeltaEvaluator`] owning `assignment` — the
    /// O(h)-per-move scoring engine local search runs on.
    ///
    /// [`DeltaEvaluator`]: crate::delta::DeltaEvaluator
    pub fn delta_evaluator(&self, assignment: Assignment) -> crate::delta::DeltaEvaluator<'_> {
        crate::delta::DeltaEvaluator::new(self, assignment)
    }

    /// Is placing VM `k` on server `j` consistent with the *rules* of its
    /// request given the partial `assignment`? (Capacity is the tracker's
    /// job; this checks affinity only.) Used by greedy and CP allocators.
    pub fn rules_allow(&self, assignment: &Assignment, k: VmId, j: ServerId) -> bool {
        let req = self.batch.request(self.batch.request_of(k));
        let dc_j = self.infra.datacenter_of(j);
        for rule in &req.rules {
            if !rule.vms().contains(&k) {
                continue;
            }
            for &other in rule.vms() {
                if other == k {
                    continue;
                }
                let Some(s_other) = assignment.server_of(other) else {
                    continue;
                };
                let same_server = s_other == j;
                let same_dc = self.infra.datacenter_of(s_other) == dc_j;
                use crate::affinity::AffinityKind::*;
                let ok = match rule.kind() {
                    SameServer => same_server,
                    SameDatacenter => same_dc,
                    DifferentServer => !same_server,
                    DifferentDatacenter => !same_dc,
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Requests fully and validly placed under `assignment` — the paper's
    /// acceptance measure behind Fig. 9.
    pub fn accepted_requests(&self, assignment: &Assignment) -> Vec<RequestId> {
        let tracker = self.tracker(assignment);
        let overloaded: Vec<ServerId> = tracker.exceeding_servers(&self.infra);
        self.batch
            .requests()
            .iter()
            .filter(|req| {
                // Every VM placed…
                let all_placed = req.vms.iter().all(|&k| assignment.server_of(k).is_some());
                if !all_placed {
                    return false;
                }
                // …on servers that are not overloaded…
                let on_ok_servers = req.vms.iter().all(|&k| {
                    let j = assignment.server_of(k).unwrap();
                    !overloaded.contains(&j)
                });
                if !on_ok_servers {
                    return false;
                }
                // …respecting every rule.
                req.rules
                    .iter()
                    .all(|r| r.is_satisfied(assignment, &self.infra))
            })
            .map(|req| req.id)
            .collect()
    }

    /// Gross revenue of the placement: Σ revenue over the resources of
    /// every accepted request (the provider earns nothing from rejected
    /// ones — the economics behind the paper's "largest revenues" claim).
    pub fn gross_revenue(&self, assignment: &Assignment) -> f64 {
        self.accepted_requests(assignment)
            .into_iter()
            .flat_map(|r| self.batch.request(r).vms.iter())
            .map(|&k| self.batch.vm(k).revenue)
            .sum()
    }

    /// Net revenue: gross revenue minus the full Eq. 15 cost.
    pub fn net_revenue(&self, assignment: &Assignment) -> f64 {
        self.gross_revenue(assignment) - self.evaluate(assignment).total()
    }

    /// Rejection rate in `[0, 1]`: rejected requests / total requests.
    /// (The paper's Fig. 9 metric; see DESIGN.md for the definition note.)
    pub fn rejection_rate(&self, assignment: &Assignment) -> f64 {
        let total = self.batch.request_count();
        if total == 0 {
            return 0.0;
        }
        let accepted = self.accepted_requests(assignment).len();
        (total - accepted) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::{AffinityKind, AffinityRule};
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};
    use crate::request::vm_spec;

    fn problem() -> AllocationProblem {
        let p = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), p.build_many(2)),
                ("dc1".into(), p.build_many(2)),
            ],
        );
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(2.0, 1024.0, 10.0); 2], vec![]);
        batch.push_request(
            vec![vm_spec(4.0, 2048.0, 20.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(2), VmId(3)],
            )],
        );
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn dims_match_table1_symbols() {
        let p = problem();
        assert_eq!(p.dims(), (2, 4, 4, 3));
        assert_eq!((p.g(), p.m(), p.n(), p.h()), (2, 4, 4, 3));
    }

    #[test]
    fn rules_allow_consults_partial_assignment() {
        let p = problem();
        let mut a = Assignment::unassigned(4);
        a.assign(VmId(2), ServerId(1));
        // VM 3 must differ from VM 2's server.
        assert!(!p.rules_allow(&a, VmId(3), ServerId(1)));
        assert!(p.rules_allow(&a, VmId(3), ServerId(0)));
        // VM 0 has no rules: anything goes.
        assert!(p.rules_allow(&a, VmId(0), ServerId(1)));
    }

    #[test]
    fn accepted_requests_and_rejection_rate() {
        let p = problem();
        let mut a = Assignment::unassigned(4);
        // Request 0 fully placed, request 1 violates its separation rule.
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0));
        a.assign(VmId(2), ServerId(1));
        a.assign(VmId(3), ServerId(1));
        assert_eq!(p.accepted_requests(&a), vec![RequestId(0)]);
        assert_eq!(p.rejection_rate(&a), 0.5);
    }

    #[test]
    fn overloaded_server_rejects_its_requests() {
        let pr = ServerProfile::commodity(3);
        let infra = Infrastructure::new(AttrSet::standard(), vec![("dc".into(), pr.build_many(1))]);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(40.0, 1.0, 1.0)], vec![]); // over 28.8
        let p = AllocationProblem::new(infra, batch, None);
        let mut a = Assignment::unassigned(1);
        a.assign(VmId(0), ServerId(0));
        assert!(p.accepted_requests(&a).is_empty());
        assert_eq!(p.rejection_rate(&a), 1.0);
        assert!(!p.is_feasible(&a));
    }

    #[test]
    fn evaluate_delegates_to_cost_model() {
        let p = problem();
        let mut a = Assignment::unassigned(4);
        for k in 0..4 {
            a.assign(VmId(k), ServerId(k % 4));
        }
        let obj = p.evaluate(&a);
        assert!(obj.usage_opex > 0.0);
        assert_eq!(obj.migration, 0.0); // no previous allocation
        assert!(p.check(&a).is_feasible());
    }

    #[test]
    #[should_panic(expected = "previous allocation covers")]
    fn previous_must_match_vm_count() {
        let p = problem();
        let infra = p.infra().clone();
        let batch = p.batch().clone();
        let _ = AllocationProblem::new(infra, batch, Some(Assignment::unassigned(7)));
    }

    #[test]
    fn revenue_counts_only_accepted_requests() {
        let p = problem();
        let mut a = Assignment::unassigned(4);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0));
        // Request 1 unplaced → no revenue from it.
        let gross = p.gross_revenue(&a);
        let expected: f64 = [VmId(0), VmId(1)]
            .iter()
            .map(|&k| p.batch().vm(k).revenue)
            .sum();
        assert!((gross - expected).abs() < 1e-12);
        // Fully placed and valid earns more.
        a.assign(VmId(2), ServerId(1));
        a.assign(VmId(3), ServerId(2));
        assert!(p.gross_revenue(&a) > gross);
        // Net = gross − total cost.
        let net = p.net_revenue(&a);
        assert!((net - (p.gross_revenue(&a) - p.evaluate(&a).total())).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_rejection_rate_is_zero() {
        let pr = ServerProfile::commodity(3);
        let infra = Infrastructure::new(AttrSet::standard(), vec![("dc".into(), pr.build_many(1))]);
        let p = AllocationProblem::new(infra, RequestBatch::new(), None);
        assert_eq!(p.rejection_rate(&Assignment::unassigned(0)), 0.0);
    }
}
