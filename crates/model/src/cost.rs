//! The three monetised objectives of Eq. 15 and their aggregate.
//!
//! 1. **Usage and operating cost** (Eq. 22): `Σ_j E_j·active(j) + Σ_k U_j(k)`
//!    — each server that hosts at least one consumer resource incurs its
//!    opex `E_j` once, and each hosted resource incurs the server's usage
//!    cost `U_j`.
//! 2. **Downtime cost** (Eq. 23): the provider pays `C^U_k` scaled by how
//!    far the experienced QoS falls below the guarantee `C^Q_k`.
//! 3. **Migration cost** (Eq. 26): `Σ_k M_k` over VMs whose placement
//!    changed between `X^t` and `X^{t+1}`.
//!
//! *Reading of Eq. 23.* The paper writes the downtime term as
//! `C^U_k · (Q_jl / C^Q_k) · X_ijk`, but prose defines it as the penalty paid
//! "when the quality of service guarantee C^Q_k is not respected" — taken
//! literally the formula would charge *more* the *better* the QoS, which
//! contradicts the prose. We implement the prose: no penalty while
//! `Q ≥ C^Q_k`, and a shortfall-proportional penalty
//! `C^U_k · (1 − Q/C^Q_k)` once the guarantee is broken, which reduces to
//! the paper's ratio term up to an affine flip and preserves its behaviour
//! (monotone in QoS degradation, bounded by `C^U_k`). Recorded in DESIGN.md.

use crate::assignment::Assignment;
use crate::infrastructure::Infrastructure;
use crate::load::LoadTracker;
use crate::qos::worst_qos;
use crate::request::RequestBatch;

/// The three objective values (all monetised, lower is better).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ObjectiveVector {
    /// Usage + operating cost (Eq. 22).
    pub usage_opex: f64,
    /// Downtime / QoS-violation penalty (Eq. 23).
    pub downtime: f64,
    /// Reconfiguration-plan cost (Eq. 26).
    pub migration: f64,
}

impl ObjectiveVector {
    /// Equal-weight aggregate of Eq. 15 ("without loss of generality we
    /// assign equal weights to these objectives").
    pub fn total(&self) -> f64 {
        self.usage_opex + self.downtime + self.migration
    }

    /// The vector as a fixed array, in the paper's term order.
    pub fn as_array(&self) -> [f64; 3] {
        [self.usage_opex, self.downtime, self.migration]
    }

    /// Weighted aggregate for stakeholders that tune the objective weights.
    pub fn weighted(&self, w: [f64; 3]) -> f64 {
        self.usage_opex * w[0] + self.downtime * w[1] + self.migration * w[2]
    }

    /// Pareto dominance: `self` dominates `other` when it is no worse in
    /// every component and strictly better in at least one.
    pub fn dominates(&self, other: &ObjectiveVector) -> bool {
        let a = self.as_array();
        let b = other.as_array();
        let mut strictly = false;
        for (x, y) in a.iter().zip(&b) {
            if x > y {
                return false;
            }
            if x < y {
                strictly = true;
            }
        }
        strictly
    }
}

/// Usage and operating cost (Eq. 22) from tracked loads.
pub fn usage_opex_cost(tracker: &LoadTracker, infra: &Infrastructure) -> f64 {
    let mut cost = 0.0;
    for j in infra.server_ids() {
        let hosted = tracker.hosted(j);
        if hosted > 0 {
            let s = infra.server(j);
            cost += s.opex + s.usage_cost * hosted as f64;
        }
    }
    cost
}

/// The Eq. 23 penalty one resource pays given the worst QoS `q` of its
/// server — zero while the guarantee holds. Factored out so the full
/// evaluation and the incremental [`DeltaEvaluator`] compute the exact
/// same expression and stay bit-identical by construction.
///
/// [`DeltaEvaluator`]: crate::delta::DeltaEvaluator
#[inline]
pub fn downtime_penalty(spec: &crate::request::VmSpec, q: f64) -> f64 {
    let guarantee = spec.qos_guarantee;
    if guarantee > 0.0 && q < guarantee {
        spec.downtime_cost * (1.0 - q / guarantee)
    } else {
        0.0
    }
}

/// Downtime cost (Eq. 23, prose reading — see module docs).
pub fn downtime_cost(
    assignment: &Assignment,
    tracker: &LoadTracker,
    batch: &RequestBatch,
    infra: &Infrastructure,
) -> f64 {
    let mut per_server_qos: Vec<Option<f64>> = vec![None; infra.server_count()];
    let mut cost = 0.0;
    for (k, j) in assignment.iter_assigned() {
        let q = *per_server_qos[j.index()].get_or_insert_with(|| worst_qos(tracker, j, infra));
        cost += downtime_penalty(batch.vm(k), q);
    }
    cost
}

/// Migration (reconfiguration-plan) cost (Eq. 26): `Σ M_k` over moved VMs.
pub fn migration_cost(next: &Assignment, previous: &Assignment, batch: &RequestBatch) -> f64 {
    next.migrations_from(previous)
        .into_iter()
        .map(|k| batch.vm(k).migration_cost)
        .sum()
}

/// Evaluates the full objective vector of Eq. 15 for an assignment.
///
/// `previous` is the currently-running allocation `X^t`; pass `None` for an
/// initial placement (migration term is then zero).
pub fn evaluate(
    assignment: &Assignment,
    batch: &RequestBatch,
    infra: &Infrastructure,
    previous: Option<&Assignment>,
) -> ObjectiveVector {
    let tracker = LoadTracker::from_assignment(assignment, batch, infra);
    evaluate_with_tracker(assignment, &tracker, batch, infra, previous)
}

/// As [`evaluate`] but reuses an existing [`LoadTracker`] (hot path for the
/// evolutionary engine which keeps trackers per individual).
pub fn evaluate_with_tracker(
    assignment: &Assignment,
    tracker: &LoadTracker,
    batch: &RequestBatch,
    infra: &Infrastructure,
    previous: Option<&Assignment>,
) -> ObjectiveVector {
    ObjectiveVector {
        usage_opex: usage_opex_cost(tracker, infra),
        downtime: downtime_cost(assignment, tracker, batch, infra),
        migration: previous.map_or(0.0, |prev| migration_cost(assignment, prev, batch)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerId, ServerProfile};
    use crate::request::{vm_spec, VmId};

    fn infra(n_servers: usize) -> Infrastructure {
        let p = ServerProfile::commodity(3); // opex 10, usage 1
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), p.build_many(n_servers))],
        )
    }

    #[test]
    fn usage_opex_charges_active_servers_once_and_per_vm() {
        let infra = infra(3);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 10.0, 1.0); 3], vec![]);
        let mut a = Assignment::unassigned(3);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0));
        a.assign(VmId(2), ServerId(1));
        let t = LoadTracker::from_assignment(&a, &batch, &infra);
        // server0: opex 10 + 2 VMs * 1; server1: opex 10 + 1; server2 idle.
        assert_eq!(usage_opex_cost(&t, &infra), 10.0 + 2.0 + 10.0 + 1.0);
    }

    #[test]
    fn consolidation_is_cheaper_than_spreading() {
        let infra = infra(2);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 10.0, 1.0); 2], vec![]);
        let mut spread = Assignment::unassigned(2);
        spread.assign(VmId(0), ServerId(0));
        spread.assign(VmId(1), ServerId(1));
        let mut packed = Assignment::unassigned(2);
        packed.assign(VmId(0), ServerId(0));
        packed.assign(VmId(1), ServerId(0));
        let c_spread = evaluate(&spread, &batch, &infra, None);
        let c_packed = evaluate(&packed, &batch, &infra, None);
        assert!(c_packed.usage_opex < c_spread.usage_opex);
    }

    #[test]
    fn downtime_zero_when_guarantee_met() {
        let infra = infra(1);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 10.0, 1.0)], vec![]);
        let mut a = Assignment::unassigned(1);
        a.assign(VmId(0), ServerId(0));
        let t = LoadTracker::from_assignment(&a, &batch, &infra);
        // Tiny load: QoS = 0.99 ≥ guarantee 0.95 → no penalty.
        assert_eq!(downtime_cost(&a, &t, &batch, &infra), 0.0);
    }

    #[test]
    fn downtime_grows_with_overload() {
        let infra = infra(1);
        let mut batch = RequestBatch::new();
        // Load CPU to ~0.90 (26/28.8) then ~0.97 (28/28.8): QoS degrades.
        let mut hot = vm_spec(26.0, 10.0, 1.0);
        hot.qos_guarantee = 0.98;
        let mut hotter = vm_spec(2.0, 10.0, 1.0);
        hotter.qos_guarantee = 0.98;
        batch.push_request(vec![hot, hotter], vec![]);
        let mut a1 = Assignment::unassigned(2);
        a1.assign(VmId(0), ServerId(0));
        let t1 = LoadTracker::from_assignment(&a1, &batch, &infra);
        let d1 = downtime_cost(&a1, &t1, &batch, &infra);
        let mut a2 = a1.clone();
        a2.assign(VmId(1), ServerId(0));
        let t2 = LoadTracker::from_assignment(&a2, &batch, &infra);
        let d2 = downtime_cost(&a2, &t2, &batch, &infra);
        assert!(d1 > 0.0, "past-knee load must incur a penalty, got {d1}");
        assert!(d2 > d1, "higher load must cost more ({d2} vs {d1})");
    }

    #[test]
    fn downtime_bounded_by_cu() {
        let infra = infra(1);
        let mut batch = RequestBatch::new();
        let mut vm = vm_spec(28.0, 10.0, 1.0);
        vm.qos_guarantee = 0.99;
        vm.downtime_cost = 5.0;
        batch.push_request(vec![vm], vec![]);
        let mut a = Assignment::unassigned(1);
        a.assign(VmId(0), ServerId(0));
        let t = LoadTracker::from_assignment(&a, &batch, &infra);
        let d = downtime_cost(&a, &t, &batch, &infra);
        assert!(d > 0.0 && d <= 5.0);
    }

    #[test]
    fn migration_cost_sums_moved_vms() {
        let infra = infra(2);
        let mut batch = RequestBatch::new();
        let mut v0 = vm_spec(1.0, 1.0, 1.0);
        v0.migration_cost = 3.0;
        let mut v1 = vm_spec(1.0, 1.0, 1.0);
        v1.migration_cost = 7.0;
        batch.push_request(vec![v0, v1], vec![]);
        let mut before = Assignment::unassigned(2);
        before.assign(VmId(0), ServerId(0));
        before.assign(VmId(1), ServerId(0));
        let mut after = before.clone();
        after.assign(VmId(1), ServerId(1)); // move only VM 1
        assert_eq!(migration_cost(&after, &before, &batch), 7.0);
        let _ = infra;
    }

    #[test]
    fn evaluate_composes_three_terms() {
        let infra = infra(2);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 10.0, 1.0); 2], vec![]);
        let mut before = Assignment::unassigned(2);
        before.assign(VmId(0), ServerId(0));
        before.assign(VmId(1), ServerId(0));
        let mut after = before.clone();
        after.assign(VmId(1), ServerId(1));
        let obj = evaluate(&after, &batch, &infra, Some(&before));
        assert_eq!(obj.migration, 1.0);
        assert_eq!(obj.usage_opex, 22.0); // two active servers, one VM each
        assert_eq!(obj.downtime, 0.0);
        assert_eq!(obj.total(), 23.0);
        assert_eq!(obj.as_array(), [22.0, 0.0, 1.0]);
    }

    #[test]
    fn dominance_is_strict_pareto() {
        let a = ObjectiveVector {
            usage_opex: 1.0,
            downtime: 1.0,
            migration: 1.0,
        };
        let b = ObjectiveVector {
            usage_opex: 2.0,
            downtime: 1.0,
            migration: 1.0,
        };
        let c = ObjectiveVector {
            usage_opex: 0.5,
            downtime: 2.0,
            migration: 1.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a)); // no strict improvement
        assert!(!a.dominates(&c) && !c.dominates(&a)); // incomparable
    }

    #[test]
    fn weighted_aggregate_applies_weights() {
        let v = ObjectiveVector {
            usage_opex: 1.0,
            downtime: 2.0,
            migration: 3.0,
        };
        assert_eq!(v.weighted([1.0, 1.0, 1.0]), v.total());
        assert_eq!(v.weighted([2.0, 0.0, 1.0]), 5.0);
    }
}
