//! # cpo-model — the consumer-and-provider IaaS allocation model
//!
//! Rust implementation of the optimisation model of
//! *Ecarot, Zeghlache, Brandily — "Consumer-and-Provider-oriented efficient
//! IaaS resource allocation" (IEEE IPDPSW 2017)*, Section III.
//!
//! The model describes a provider substrate of `g` datacenters holding `m`
//! servers, a consumer demand of `n` virtual resources over `h` shared
//! attributes, and asks for a placement `X_{ijk}` minimising three
//! monetised objectives (usage+opex, downtime, migration — Eq. 15) under
//! capacity (Eq. 16), completeness (Eq. 17) and affinity/anti-affinity
//! constraints (Eqs. 18–21).
//!
//! ## Layout
//!
//! * [`attr`] — shared attribute descriptors (`H`, Table I)
//! * [`matrix`] — flat row-major matrices backing `P`, `C`, `F`, `L`, `Q`
//! * [`infrastructure`] — datacenters, servers, capacities, cost vectors
//! * [`request`] — consumer VMs, requests, demand matrix `C`
//! * [`affinity`] — the four placement rules (Eqs. 9–12) + linearisation
//! * [`assignment`] — the `X_{ijk}` mapping variable, stored flat
//! * [`load`] — Eq. 25 loads with O(h) incremental updates
//! * [`qos`] — the Eq. 24 piecewise QoS curve
//! * [`cost`] — the Eq. 15 objective vector (Eqs. 22, 23, 26)
//! * [`delta`] — incremental O(h) move scoring for local search
//! * [`eval_pool`] — reusable [`delta::DeltaEvaluator`] pool for parallel scoring
//! * [`deadline`] — wall-clock deadlines for anytime solvers
//! * [`fleet`] — packed VM/server-load tables for production-scale replay
//! * [`ilp`] — the explicit 0/1 integer program (Section III's LP view)
//! * [`constraints`] — violation checking and reporting (Fig. 10 metric)
//! * [`problem`] — [`problem::AllocationProblem`] bundling everything
//!
//! ## Quick example
//!
//! ```
//! use cpo_model::prelude::*;
//!
//! // Provider: one datacenter, two commodity servers.
//! let profile = ServerProfile::commodity(3);
//! let infra = Infrastructure::new(
//!     AttrSet::standard(),
//!     vec![("paris-1".into(), profile.build_many(2))],
//! );
//!
//! // Consumer: a two-VM request that must be split across servers.
//! let mut batch = RequestBatch::new();
//! batch.push_request(
//!     vec![vm_spec(4.0, 8192.0, 100.0), vm_spec(4.0, 8192.0, 100.0)],
//!     vec![AffinityRule::new(AffinityKind::DifferentServer, vec![VmId(0), VmId(1)])],
//! );
//! let problem = AllocationProblem::new(infra, batch, None);
//!
//! // Place them and evaluate.
//! let mut x = Assignment::unassigned(2);
//! x.assign(VmId(0), ServerId(0));
//! x.assign(VmId(1), ServerId(1));
//! assert!(problem.is_feasible(&x));
//! let z = problem.evaluate(&x);
//! assert!(z.total() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod assignment;
pub mod attr;
pub mod constraints;
pub mod cost;
pub mod deadline;
pub mod delta;
pub mod eval_pool;
pub mod fleet;
pub mod ilp;
pub mod infrastructure;
pub mod load;
pub mod matrix;
pub mod problem;
pub mod qos;
pub mod request;

/// Convenient glob import of the most-used model types.
pub mod prelude {
    pub use crate::affinity::{AffinityKind, AffinityRule, LinearizedRule};
    pub use crate::assignment::Assignment;
    pub use crate::attr::{AttrId, AttrKind, AttrSet};
    pub use crate::constraints::{Violation, ViolationReport};
    pub use crate::cost::ObjectiveVector;
    pub use crate::deadline::Deadline;
    pub use crate::delta::{DeltaEvaluator, MoveScore};
    pub use crate::eval_pool::EvaluatorPool;
    pub use crate::fleet::{ServerLoadTable, VmTable, NO_SLOT};
    pub use crate::infrastructure::{
        Datacenter, DatacenterId, Infrastructure, Server, ServerId, ServerProfile,
    };
    pub use crate::load::LoadTracker;
    pub use crate::matrix::Matrix;
    pub use crate::problem::AllocationProblem;
    pub use crate::request::{vm_spec, Request, RequestBatch, RequestId, VmId, VmSpec};
}
