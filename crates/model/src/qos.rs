//! The piecewise quality-of-service curve of Eq. 24.
//!
//! The paper (following the empirical studies it cites, refs. 23 and 24)
//! models QoS as flat at `Q^M_{jl}` while the load stays below the knee
//! `L^M_{jl}`, then decaying exponentially:
//!
//! ```text
//! Q_jl = Q^M_jl                                   if L_jl ≤ L^M_jl
//! Q_jl = Q^M_jl · exp((L^M_jl − L_jl)/(1 − L^M_jl)) if L_jl > L^M_jl
//! ```
//!
//! The exponent is ≤ 0 past the knee, so QoS decays continuously from
//! `Q^M` towards 0 as load grows — matching the cited observation that
//! "quality of service decreases exponentially with increasing workload".

use crate::attr::AttrId;
use crate::infrastructure::{Infrastructure, ServerId};
use crate::load::LoadTracker;

/// Evaluates Eq. 24 for a single (load, knee, max-QoS) triple.
///
/// `max_load` must be in `[0, 1)`; loads past 1.0 (overload) keep decaying.
#[inline]
pub fn qos_at(load: f64, max_load: f64, max_qos: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&max_load), "max_load must be in [0,1)");
    if load <= max_load {
        max_qos
    } else {
        // (L^M − L)/(1 − L^M) ≤ 0 here, so the factor is in (0, 1].
        max_qos * ((max_load - load) / (1.0 - max_load)).exp()
    }
}

/// QoS of attribute `l` on server `j` under the tracked loads (Eq. 24).
#[inline]
pub fn server_qos(tracker: &LoadTracker, j: ServerId, l: AttrId, infra: &Infrastructure) -> f64 {
    let s = infra.server(j);
    let load = tracker.load(j, l, infra);
    if load.is_infinite() {
        return 0.0; // zero-capacity attribute under demand: no service
    }
    qos_at(load, s.max_load[l.index()], s.max_qos[l.index()])
}

/// Worst (minimum) QoS across all attributes of server `j` — the service
/// level a hosted VM actually experiences.
pub fn worst_qos(tracker: &LoadTracker, j: ServerId, infra: &Infrastructure) -> f64 {
    infra
        .attrs()
        .ids()
        .map(|l| server_qos(tracker, j, l, infra))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};
    use crate::request::{vm_spec, RequestBatch, VmId};

    #[test]
    fn below_knee_qos_is_max() {
        assert_eq!(qos_at(0.0, 0.8, 0.99), 0.99);
        assert_eq!(qos_at(0.8, 0.8, 0.99), 0.99);
        assert_eq!(qos_at(0.5, 0.8, 0.95), 0.95);
    }

    #[test]
    fn past_knee_qos_decays_continuously() {
        let knee = 0.8;
        let qm = 0.99;
        // Continuity at the knee.
        let eps = 1e-9;
        assert!((qos_at(knee + eps, knee, qm) - qm).abs() < 1e-6);
        // Strictly decreasing past the knee.
        let q1 = qos_at(0.85, knee, qm);
        let q2 = qos_at(0.95, knee, qm);
        let q3 = qos_at(1.2, knee, qm);
        assert!(qm > q1 && q1 > q2 && q2 > q3 && q3 > 0.0);
    }

    #[test]
    fn eq24_closed_form_matches() {
        // Hand-computed: L=0.9, LM=0.8, QM=0.99 → 0.99·e^(-0.1/0.2) = 0.99·e^-0.5
        let expected = 0.99 * (-0.5_f64).exp();
        assert!((qos_at(0.9, 0.8, 0.99) - expected).abs() < 1e-12);
    }

    #[test]
    fn server_qos_uses_tracked_load() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), vec![ServerProfile::commodity(3).build()])],
        );
        let mut batch = RequestBatch::new();
        // 28.8 effective CPU; demand 26 → load ≈ 0.903 > knee 0.8
        batch.push_request(vec![vm_spec(26.0, 1.0, 1.0)], vec![]);
        let mut t = LoadTracker::new(1, 3);
        t.add(VmId(0), ServerId(0), &batch);
        let q_cpu = server_qos(&t, ServerId(0), AttrId(0), &infra);
        assert!(
            q_cpu < 0.99,
            "cpu loaded past knee should degrade, got {q_cpu}"
        );
        let q_ram = server_qos(&t, ServerId(0), AttrId(1), &infra);
        assert_eq!(q_ram, 0.99, "ram barely loaded stays at max");
        // Worst-of is the degraded CPU value.
        assert_eq!(worst_qos(&t, ServerId(0), &infra), q_cpu);
    }

    #[test]
    fn idle_server_has_max_qos() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), vec![ServerProfile::commodity(3).build()])],
        );
        let t = LoadTracker::new(1, 3);
        assert_eq!(worst_qos(&t, ServerId(0), &infra), 0.99);
    }
}
