//! Provider-side substrate: datacenters `G`, servers `M`, the capacity
//! matrix `P` (Eq. 1), the capacity-factor matrix `F` (Eq. 3), the opex
//! vector `E` (Eq. 6), the usage-cost vector `U` (Eq. 7), and the per-server
//! QoS envelopes `L^M`, `Q^M` (Eq. 8).

use crate::attr::{AttrId, AttrSet};
use crate::matrix::Matrix;

/// Index of a datacenter (the paper's `i ∈ G`).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct DatacenterId(pub usize);

impl DatacenterId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Global index of a server (the paper's `j ∈ M`).
///
/// Servers are numbered globally across all datacenters; the owning
/// datacenter is recoverable through [`Infrastructure::datacenter_of`].
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct ServerId(pub usize);

impl ServerId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One physical server (hypervisor host).
#[derive(Clone, Debug, PartialEq)]
pub struct Server {
    /// Raw capacity per attribute — row `j` of the paper's `P` matrix.
    pub capacity: Vec<f64>,
    /// Virtual-to-physical capacity factor per attribute — row `j` of `F`.
    /// A factor of 0.9 means only 90 % of the raw capacity is usable for
    /// virtual resources (hypervisor overhead).
    pub factor: Vec<f64>,
    /// Operating expenditure `E_j` charged once when the server hosts at
    /// least one VM (power, floor space, storage, IT operations).
    pub opex: f64,
    /// Usage cost `U_j` charged per hosted consumer resource.
    pub usage_cost: f64,
    /// Maximum load `L^M_{jl}` per attribute before QoS degradation
    /// (each in `[0, 1)`).
    pub max_load: Vec<f64>,
    /// Maximum quality of service `Q^M_{jl}` per attribute (each in `[0, 1)`).
    pub max_qos: Vec<f64>,
}

impl Server {
    /// Effective usable capacity for attribute `l`: `P_{jl} · F_{jl}`
    /// (the right-hand side of the capacity constraint, Eq. 4/16).
    #[inline]
    pub fn effective_capacity(&self, l: AttrId) -> f64 {
        self.capacity[l.index()] * self.factor[l.index()]
    }

    /// Validates the invariants the paper places on server parameters
    /// (Eq. 8 bounds, non-negative capacities and costs) against an
    /// attribute set of size `h`.
    pub fn validate(&self, h: usize) -> Result<(), String> {
        if self.capacity.len() != h || self.factor.len() != h {
            return Err(format!(
                "server capacity/factor must have {h} attributes, got {}/{}",
                self.capacity.len(),
                self.factor.len()
            ));
        }
        if self.max_load.len() != h || self.max_qos.len() != h {
            return Err(format!(
                "server max_load/max_qos must have {h} attributes, got {}/{}",
                self.max_load.len(),
                self.max_qos.len()
            ));
        }
        for &c in &self.capacity {
            if !c.is_finite() || c < 0.0 {
                return Err(format!("capacity must be finite and >= 0, got {c}"));
            }
        }
        for &f in &self.factor {
            if !f.is_finite() || f <= 0.0 {
                return Err(format!("capacity factor must be finite and > 0, got {f}"));
            }
        }
        if !self.opex.is_finite() || self.opex < 0.0 {
            return Err(format!("opex must be finite and >= 0, got {}", self.opex));
        }
        if !self.usage_cost.is_finite() || self.usage_cost < 0.0 {
            return Err(format!(
                "usage cost must be finite and >= 0, got {}",
                self.usage_cost
            ));
        }
        for &lm in &self.max_load {
            if !(0.0..1.0).contains(&lm) {
                return Err(format!("max load must be in [0,1), got {lm}"));
            }
        }
        for &qm in &self.max_qos {
            if !(0.0..1.0).contains(&qm) {
                return Err(format!("max QoS must be in [0,1), got {qm}"));
            }
        }
        Ok(())
    }
}

/// A datacenter: a named group of consecutive global server ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datacenter {
    /// Human-readable name used in reports.
    pub name: String,
    /// First global server id owned by this datacenter.
    pub first_server: usize,
    /// Number of servers in this datacenter.
    pub server_count: usize,
}

impl Datacenter {
    /// Iterator over the global server ids of this datacenter.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> {
        (self.first_server..self.first_server + self.server_count).map(ServerId)
    }

    /// `true` when server `j` belongs to this datacenter.
    pub fn contains(&self, j: ServerId) -> bool {
        (self.first_server..self.first_server + self.server_count).contains(&j.index())
    }
}

/// The provider substrate: all datacenters and servers plus derived views.
#[derive(Clone, Debug)]
pub struct Infrastructure {
    attrs: AttrSet,
    datacenters: Vec<Datacenter>,
    servers: Vec<Server>,
    /// `server_dc[j]` = owning datacenter of global server `j`.
    server_dc: Vec<DatacenterId>,
    /// Cached `m × h` effective capacity matrix (`P ⊙ F`).
    effective: Matrix<f64>,
}

impl Infrastructure {
    /// Assembles an infrastructure from datacenters each carrying its own
    /// servers. Validates every server against the attribute set.
    ///
    /// # Panics
    /// Panics if any server fails [`Server::validate`] or if no datacenter
    /// or server is provided.
    pub fn new(attrs: AttrSet, dcs: Vec<(String, Vec<Server>)>) -> Self {
        assert!(
            !dcs.is_empty(),
            "infrastructure needs at least one datacenter"
        );
        let h = attrs.len();
        let mut datacenters = Vec::with_capacity(dcs.len());
        let mut servers = Vec::new();
        let mut server_dc = Vec::new();
        for (dc_idx, (name, dc_servers)) in dcs.into_iter().enumerate() {
            let first_server = servers.len();
            for (s_idx, s) in dc_servers.iter().enumerate() {
                if let Err(e) = s.validate(h) {
                    panic!("invalid server {s_idx} in datacenter {name:?}: {e}");
                }
            }
            datacenters.push(Datacenter {
                name,
                first_server,
                server_count: dc_servers.len(),
            });
            for s in dc_servers {
                servers.push(s);
                server_dc.push(DatacenterId(dc_idx));
            }
        }
        assert!(
            !servers.is_empty(),
            "infrastructure needs at least one server"
        );
        let effective = Matrix::from_fn(servers.len(), h, |j, l| {
            servers[j].effective_capacity(AttrId(l))
        });
        Self {
            attrs,
            datacenters,
            servers,
            server_dc,
            effective,
        }
    }

    /// The shared attribute set.
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of attributes `h`.
    #[inline]
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of datacenters `g`.
    #[inline]
    pub fn datacenter_count(&self) -> usize {
        self.datacenters.len()
    }

    /// Number of servers `m` (global, across all datacenters).
    #[inline]
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The datacenters.
    pub fn datacenters(&self) -> &[Datacenter] {
        &self.datacenters
    }

    /// The servers, indexed by global [`ServerId`].
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Server `j`.
    #[inline]
    pub fn server(&self, j: ServerId) -> &Server {
        &self.servers[j.index()]
    }

    /// Owning datacenter of server `j`.
    #[inline]
    pub fn datacenter_of(&self, j: ServerId) -> DatacenterId {
        self.server_dc[j.index()]
    }

    /// Effective capacity `P_{jl} · F_{jl}` (cached).
    #[inline]
    pub fn effective_capacity(&self, j: ServerId, l: AttrId) -> f64 {
        *self.effective.get(j.index(), l.index())
    }

    /// Row of effective capacities for server `j`.
    #[inline]
    pub fn effective_row(&self, j: ServerId) -> &[f64] {
        self.effective.row(j.index())
    }

    /// Iterator over all global server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> {
        (0..self.servers.len()).map(ServerId)
    }

    /// Iterator over all datacenter ids.
    pub fn datacenter_ids(&self) -> impl Iterator<Item = DatacenterId> {
        (0..self.datacenters.len()).map(DatacenterId)
    }

    /// The provider capacity matrix `P` (`m × h`), materialised.
    pub fn capacity_matrix(&self) -> Matrix<f64> {
        Matrix::from_fn(self.server_count(), self.attr_count(), |j, l| {
            self.servers[j].capacity[l]
        })
    }

    /// The capacity-factor matrix `F` (`m × h`), materialised.
    pub fn factor_matrix(&self) -> Matrix<f64> {
        Matrix::from_fn(self.server_count(), self.attr_count(), |j, l| {
            self.servers[j].factor[l]
        })
    }

    /// Adjusts server `j`'s raw capacity by `delta` per attribute
    /// (clamped at zero) and refreshes the cached effective row. This is
    /// the residual-capacity primitive of streaming fleet state: carving
    /// a VM's demand out of (or returning it to) a headroom
    /// infrastructure without rebuilding the whole substrate.
    ///
    /// # Panics
    /// Panics if `delta` does not have `h` attributes.
    pub fn adjust_capacity(&mut self, j: ServerId, delta: &[f64]) {
        let h = self.attr_count();
        assert_eq!(delta.len(), h, "delta must have {h} attributes");
        let server = &mut self.servers[j.index()];
        for (l, d) in delta.iter().enumerate() {
            server.capacity[l] = (server.capacity[l] + d).max(0.0);
        }
        let row = self.effective.row_mut(j.index());
        for (l, e) in row.iter_mut().enumerate() {
            *e = server.capacity[l] * server.factor[l];
        }
    }

    /// Overwrites server `j`'s raw capacity (clamped at zero per
    /// attribute) and refreshes the cached effective row.
    ///
    /// # Panics
    /// Panics if `capacity` does not have `h` attributes.
    pub fn set_capacity(&mut self, j: ServerId, capacity: &[f64]) {
        let h = self.attr_count();
        assert_eq!(capacity.len(), h, "capacity must have {h} attributes");
        let server = &mut self.servers[j.index()];
        for (l, &c) in capacity.iter().enumerate() {
            server.capacity[l] = c.max(0.0);
        }
        let row = self.effective.row_mut(j.index());
        for (l, e) in row.iter_mut().enumerate() {
            *e = server.capacity[l] * server.factor[l];
        }
    }

    /// Total effective capacity of the whole infrastructure per attribute —
    /// used by scenario generators to target utilisation levels.
    pub fn total_effective_capacity(&self) -> Vec<f64> {
        let h = self.attr_count();
        let mut tot = vec![0.0; h];
        for j in 0..self.server_count() {
            for (l, t) in tot.iter_mut().enumerate() {
                *t += *self.effective.get(j, l);
            }
        }
        tot
    }
}

/// Convenience builder for a homogeneous server profile.
#[derive(Clone, Debug)]
pub struct ServerProfile {
    /// Capacity per attribute.
    pub capacity: Vec<f64>,
    /// Capacity factor per attribute.
    pub factor: Vec<f64>,
    /// Opex `E_j`.
    pub opex: f64,
    /// Usage cost `U_j`.
    pub usage_cost: f64,
    /// Max load knee per attribute.
    pub max_load: Vec<f64>,
    /// Max QoS per attribute.
    pub max_qos: Vec<f64>,
}

impl ServerProfile {
    /// A balanced commodity profile for `h` standard attributes:
    /// 32 vCPU, 128 GiB RAM (in MiB), 2 TiB disk (in GiB).
    pub fn commodity(h: usize) -> Self {
        let base = [32.0, 131_072.0, 2048.0];
        let capacity: Vec<f64> = (0..h)
            .map(|l| base.get(l).copied().unwrap_or(100.0))
            .collect();
        Self {
            capacity,
            factor: vec![0.9; h],
            opex: 10.0,
            usage_cost: 1.0,
            max_load: vec![0.8; h],
            max_qos: vec![0.99; h],
        }
    }

    /// Materialises one [`Server`] from the profile.
    pub fn build(&self) -> Server {
        Server {
            capacity: self.capacity.clone(),
            factor: self.factor.clone(),
            opex: self.opex,
            usage_cost: self.usage_cost,
            max_load: self.max_load.clone(),
            max_qos: self.max_qos.clone(),
        }
    }

    /// Materialises `n` identical servers.
    pub fn build_many(&self, n: usize) -> Vec<Server> {
        (0..n).map(|_| self.build()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_infra() -> Infrastructure {
        let attrs = AttrSet::standard();
        let profile = ServerProfile::commodity(3);
        Infrastructure::new(
            attrs,
            vec![
                ("dc0".into(), profile.build_many(2)),
                ("dc1".into(), profile.build_many(3)),
            ],
        )
    }

    #[test]
    fn global_server_numbering_spans_datacenters() {
        let infra = tiny_infra();
        assert_eq!(infra.server_count(), 5);
        assert_eq!(infra.datacenter_count(), 2);
        assert_eq!(infra.datacenter_of(ServerId(0)), DatacenterId(0));
        assert_eq!(infra.datacenter_of(ServerId(1)), DatacenterId(0));
        assert_eq!(infra.datacenter_of(ServerId(2)), DatacenterId(1));
        assert_eq!(infra.datacenter_of(ServerId(4)), DatacenterId(1));
    }

    #[test]
    fn datacenter_server_iteration_matches_ownership() {
        let infra = tiny_infra();
        let dc1 = &infra.datacenters()[1];
        let ids: Vec<_> = dc1.servers().map(|s| s.index()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(dc1.contains(ServerId(3)));
        assert!(!dc1.contains(ServerId(1)));
    }

    #[test]
    fn effective_capacity_applies_factor() {
        let infra = tiny_infra();
        let j = ServerId(0);
        let l = AttrId(0);
        let s = infra.server(j);
        assert!((infra.effective_capacity(j, l) - s.capacity[0] * s.factor[0]).abs() < 1e-12);
        // commodity: 32 vCPU * 0.9 = 28.8
        assert!((infra.effective_capacity(j, l) - 28.8).abs() < 1e-12);
    }

    #[test]
    fn capacity_and_factor_matrices_have_model_shape() {
        let infra = tiny_infra();
        let p = infra.capacity_matrix();
        let f = infra.factor_matrix();
        assert_eq!((p.rows(), p.cols()), (5, 3));
        assert_eq!((f.rows(), f.cols()), (5, 3));
        assert!(p.is_nonnegative());
        assert!(f.is_nonnegative());
    }

    #[test]
    fn total_effective_capacity_sums_servers() {
        let infra = tiny_infra();
        let tot = infra.total_effective_capacity();
        assert!((tot[0] - 5.0 * 28.8).abs() < 1e-9);
    }

    #[test]
    fn adjust_capacity_clamps_and_refreshes_effective() {
        let mut infra = tiny_infra();
        let j = ServerId(1);
        infra.adjust_capacity(j, &[-2.0, -1024.0, 0.0]);
        assert_eq!(infra.server(j).capacity[0], 30.0);
        assert!((infra.effective_capacity(j, AttrId(0)) - 27.0).abs() < 1e-12);
        // Over-subtracting clamps to zero instead of going negative.
        infra.adjust_capacity(j, &[-1000.0, 0.0, 0.0]);
        assert_eq!(infra.server(j).capacity[0], 0.0);
        assert_eq!(infra.effective_capacity(j, AttrId(0)), 0.0);
        // Returning capacity restores headroom.
        infra.adjust_capacity(j, &[32.0, 1024.0, 0.0]);
        assert_eq!(infra.server(j).capacity[0], 32.0);
        assert!((infra.effective_capacity(j, AttrId(0)) - 28.8).abs() < 1e-12);
    }

    #[test]
    fn set_capacity_overwrites_a_row() {
        let mut infra = tiny_infra();
        let j = ServerId(0);
        infra.set_capacity(j, &[10.0, 1024.0, -5.0]);
        assert_eq!(infra.server(j).capacity, vec![10.0, 1024.0, 0.0]);
        assert!((infra.effective_capacity(j, AttrId(0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn server_validation_rejects_bad_bounds() {
        let mut s = ServerProfile::commodity(3).build();
        s.max_load[1] = 1.0; // must be < 1
        assert!(s.validate(3).is_err());
        let mut s2 = ServerProfile::commodity(3).build();
        s2.factor[0] = 0.0; // must be > 0
        assert!(s2.validate(3).is_err());
        let mut s3 = ServerProfile::commodity(3).build();
        s3.opex = f64::NAN;
        assert!(s3.validate(3).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid server")]
    fn infrastructure_rejects_invalid_servers() {
        let mut bad = ServerProfile::commodity(3).build();
        bad.capacity = vec![1.0]; // wrong h
        let _ = Infrastructure::new(AttrSet::standard(), vec![("dc".into(), vec![bad])]);
    }

    #[test]
    fn wrong_attr_count_is_reported() {
        let s = ServerProfile::commodity(2).build();
        assert!(s.validate(3).is_err());
    }
}
