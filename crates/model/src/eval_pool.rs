//! A shared pool of reusable [`DeltaEvaluator`]s for parallel scoring.
//!
//! Originally extracted (as `cpo_core::eval_pool`, which now re-exports
//! this module) from the two identical inline pools in the MOEA and
//! weighted-GA adapters after a concurrency audit of the
//! sharded-scheduler work. The audit question was whether a pool's
//! `Mutex` is ever held across a solve or a score — which would
//! serialise rayon workers and, worse, would deadlock if a scoring path
//! ever re-entered the pool. The answer is no, and this type makes the
//! discipline structural:
//!
//! * [`EvaluatorPool::score`] takes the lock **twice, briefly**: once to
//!   pop an evaluator (or miss and build a fresh one), once to push it
//!   back. The actual `reset` + `score` — the expensive part, touching
//!   the tracker matrix and penalty caches — runs on an **owned**
//!   evaluator with no lock held.
//! * [`EvaluatorPool::checkout`] / [`checkin`](EvaluatorPool::checkin)
//!   expose the same pop/push pair for workers that keep an evaluator
//!   across a whole scan (the parallel tabu engine draws one per scan
//!   worker at search start and returns it at the end) — the lock is
//!   still never held while the evaluator is used.
//! * The pool therefore grows to at most the number of concurrent
//!   workers, and a worker can never block another for longer than a
//!   `Vec::pop`/`Vec::push`.
//!
//! The sharded scheduler (`cpo_platform::shard`) deliberately does
//! *not* use this type: shards are long-lived within a round and each
//! owns a private `DeltaEvaluator` outright, so cross-shard scoring
//! shares nothing. Pools are for the intra-solve hot loop, where
//! evaluations are short and churn is high.
//!
//! A `Mutex` (not a thread-local) because the evaluators borrow the
//! problem for `'a` and `thread_local!` requires `'static`.

use crate::assignment::Assignment;
use crate::delta::{DeltaEvaluator, MoveScore};
use crate::problem::AllocationProblem;
use std::sync::Mutex;

/// Reusable [`DeltaEvaluator`]s for one [`AllocationProblem`], popped
/// per evaluation (or checked out per worker). See the module docs for
/// the locking discipline.
pub struct EvaluatorPool<'a> {
    problem: &'a AllocationProblem,
    pool: Mutex<Vec<DeltaEvaluator<'a>>>,
}

impl<'a> EvaluatorPool<'a> {
    /// An empty pool over `problem`. Evaluators are built lazily on
    /// first miss, so an unused pool allocates nothing.
    pub fn new(problem: &'a AllocationProblem) -> Self {
        Self {
            problem,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The problem every pooled evaluator scores against.
    pub fn problem(&self) -> &'a AllocationProblem {
        self.problem
    }

    /// Draws an evaluator holding `assignment`: pop (brief lock) then
    /// reset — or a fresh build on a miss — with no lock held during
    /// either. The caller owns the evaluator until
    /// [`checkin`](Self::checkin).
    pub fn checkout(&self, assignment: Assignment) -> DeltaEvaluator<'a> {
        let pooled = self.pool.lock().expect("evaluator pool poisoned").pop();
        match pooled {
            Some(mut ev) => {
                ev.reset(assignment);
                ev
            }
            None => DeltaEvaluator::new(self.problem, assignment),
        }
    }

    /// Returns an evaluator to the pool (brief lock). Its state is kept
    /// as-is; the next checkout resets it.
    pub fn checkin(&self, ev: DeltaEvaluator<'a>) {
        self.pool.lock().expect("evaluator pool poisoned").push(ev);
    }

    /// Scores `assignment` on a pooled evaluator: pop (brief lock),
    /// reset + score (no lock), push back (brief lock). Bit-identical
    /// to a fresh `DeltaEvaluator::new(..).score()` — `reset` rebuilds
    /// every derived buffer from the new assignment.
    pub fn score(&self, assignment: Assignment) -> MoveScore {
        let ev = self.checkout(assignment);
        let score = ev.score();
        self.checkin(ev);
        score
    }

    /// Evaluators currently parked in the pool (none are checked out
    /// while this can be observed without a race, so this is primarily
    /// a post-run diagnostic: it bounds the peak worker concurrency).
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("evaluator pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::prelude::*;

    fn problem() -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(3))],
        );
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(2.0, 4096.0, 40.0); 2], vec![]);
        batch.push_request(vec![vm_spec(1.0, 2048.0, 20.0)], vec![]);
        AllocationProblem::new(infra, batch, None)
    }

    fn spread(problem: &AllocationProblem) -> Assignment {
        let mut a = Assignment::unassigned(problem.n());
        for k in 0..problem.n() {
            a.assign(VmId(k), ServerId(k % problem.m()));
        }
        a
    }

    #[test]
    fn pooled_score_matches_fresh_evaluator() {
        let p = problem();
        let pool = EvaluatorPool::new(&p);
        let direct = DeltaEvaluator::new(&p, spread(&p)).score();
        let pooled_cold = pool.score(spread(&p));
        let pooled_warm = pool.score(spread(&p)); // exercises reset()
        assert_eq!(
            direct.total_cost().to_bits(),
            pooled_cold.total_cost().to_bits()
        );
        assert_eq!(
            direct.total_cost().to_bits(),
            pooled_warm.total_cost().to_bits()
        );
        assert_eq!(direct.violation, pooled_warm.violation);
    }

    #[test]
    fn sequential_use_parks_exactly_one_evaluator() {
        let p = problem();
        let pool = EvaluatorPool::new(&p);
        for _ in 0..8 {
            pool.score(spread(&p));
        }
        assert_eq!(pool.idle(), 1, "no concurrency ⇒ no pool growth");
    }

    #[test]
    fn checkout_holds_an_evaluator_across_uses() {
        let p = problem();
        let pool = EvaluatorPool::new(&p);
        let mut ev = pool.checkout(spread(&p));
        let direct = DeltaEvaluator::new(&p, spread(&p)).score();
        assert_eq!(
            ev.score().total_cost().to_bits(),
            direct.total_cost().to_bits()
        );
        ev.apply(VmId(0), ServerId(2));
        pool.checkin(ev);
        assert_eq!(pool.idle(), 1);
        // The next checkout resets whatever state the worker left behind.
        let ev2 = pool.checkout(spread(&p));
        assert_eq!(
            ev2.score().total_cost().to_bits(),
            direct.total_cost().to_bits()
        );
        pool.checkin(ev2);
    }

    #[test]
    fn concurrent_use_grows_to_at_most_worker_count() {
        let p = problem();
        let pool = EvaluatorPool::new(&p);
        let threads = 4;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..32 {
                        pool.score(spread(&p));
                    }
                });
            }
        });
        let idle = pool.idle();
        assert!(
            idle >= 1 && idle <= threads,
            "pool size {idle} out of range"
        );
    }
}
