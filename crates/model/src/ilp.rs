//! The integer-linear-programming formulation of Section III, made
//! explicit: "we first express the problem using a linear programming
//! approach" (paper). This module materialises the exact variable set,
//! constraint matrix and linearised objective the equations describe, and
//! cross-checks them against the executable model — every solver in the
//! workspace is, formally, solving *this* program.
//!
//! ## Variables
//!
//! * `x_{jk} ∈ {0,1}` — VM `k` hosted on server `j`. The paper's tensor
//!   `X_{ijk}` collapses to `x_{jk}` because the datacenter index `i` is
//!   a function of `j`; the datacenter-level constraints below re-expand
//!   it where Eqs. 9/11 need it.
//! * `y_j ∈ {0,1}` — server `j` is active. This is the standard
//!   facility-location linearisation of the opex term of Eq. 22 (a
//!   server pays `E_j` once iff it hosts anything), linked by
//!   `x_{jk} ≤ y_j`.
//!
//! ## Constraints
//!
//! | paper | here |
//! |---|---|
//! | Eq. 17 (assignment) | `Σ_j x_{jk} = 1` per VM |
//! | Eq. 16 (capacity)   | `Σ_k C_{kl} x_{jk} ≤ P_{jl} F_{jl}` per server & attribute |
//! | Eq. 10 (same server, via Eqs. 13–14) | `x_{j,a} − x_{j,b} = 0` per server & rule pair |
//! | Eq. 9 (same datacenter) | `Σ_{j∈i} x_{j,a} − Σ_{j∈i} x_{j,b} = 0` per datacenter & rule pair |
//! | Eq. 12 (different servers) | `Σ_{k∈rule} x_{jk} ≤ 1` per server |
//! | Eq. 11 (different datacenters) | `Σ_{k∈rule} Σ_{j∈i} x_{jk} ≤ 1` per datacenter |
//! | activation | `x_{jk} − y_j ≤ 0` per server & VM |
//!
//! ## Objective
//!
//! The linear part of Eq. 15/22: `min Σ_j E_j y_j + Σ_{jk} U_j x_{jk}`.
//! The downtime term (Eq. 23) is piecewise-exponential and the migration
//! term (Eq. 26) depends on `X^t`; both stay in the executable model —
//! which is exactly why the paper moves beyond a pure LP solver.

use crate::affinity::AffinityKind;
use crate::assignment::Assignment;
use crate::infrastructure::ServerId;
use crate::problem::AllocationProblem;
use crate::request::VmId;

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// `Σ terms ≤ rhs`
    Le,
    /// `Σ terms = rhs`
    Eq,
}

/// Which model equation a constraint row encodes (for reporting).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RowKind {
    /// Eq. 17 — every VM assigned exactly once.
    Assignment,
    /// Eq. 16 — per-server, per-attribute capacity.
    Capacity,
    /// Eqs. 10/13–14 — co-location on the same server.
    SameServer,
    /// Eq. 9 — co-location in the same datacenter.
    SameDatacenter,
    /// Eq. 12 — separation across servers.
    DifferentServer,
    /// Eq. 11 — separation across datacenters.
    DifferentDatacenter,
    /// `x ≤ y` server-activation link (opex linearisation).
    Activation,
}

/// One row of the constraint matrix: sparse `terms · vars (≤|=) rhs`.
#[derive(Clone, Debug)]
pub struct LinearConstraint {
    /// Sparse coefficients: `(variable index, coefficient)`.
    pub terms: Vec<(usize, f64)>,
    /// The relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
    /// Which equation this row encodes.
    pub kind: RowKind,
}

impl LinearConstraint {
    /// Evaluates the left-hand side on a 0/1 solution vector.
    pub fn lhs(&self, solution: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * solution[v]).sum()
    }

    /// Is the row satisfied (with a small tolerance)?
    pub fn is_satisfied(&self, solution: &[f64]) -> bool {
        let lhs = self.lhs(solution);
        match self.relation {
            Relation::Le => lhs <= self.rhs + 1e-9,
            Relation::Eq => (lhs - self.rhs).abs() <= 1e-9,
        }
    }
}

/// The full 0/1 integer program of Section III.
#[derive(Clone, Debug)]
pub struct IlpFormulation {
    /// Servers `m`.
    pub m: usize,
    /// VMs `n`.
    pub n: usize,
    /// Total variables: `m·n` placement vars `x_{jk}` followed by `m`
    /// activation vars `y_j`.
    pub n_vars: usize,
    /// Linear objective coefficients per variable (minimised).
    pub objective: Vec<f64>,
    /// The constraint rows.
    pub constraints: Vec<LinearConstraint>,
}

impl IlpFormulation {
    /// Index of `x_{jk}`.
    #[inline]
    pub fn x(&self, j: ServerId, k: VmId) -> usize {
        j.index() * self.n + k.index()
    }

    /// Index of `y_j`.
    #[inline]
    pub fn y(&self, j: ServerId) -> usize {
        self.m * self.n + j.index()
    }

    /// Builds the program from a problem instance.
    pub fn from_problem(problem: &AllocationProblem) -> Self {
        let m = problem.m();
        let n = problem.n();
        let infra = problem.infra();
        let batch = problem.batch();
        let n_vars = m * n + m;

        let mut ilp = Self {
            m,
            n,
            n_vars,
            objective: vec![0.0; n_vars],
            constraints: Vec::new(),
        };

        // Objective: Σ E_j y_j + Σ U_j x_{jk} (the linear part of Eq. 22).
        for j in infra.server_ids() {
            let s = infra.server(j);
            let yj = ilp.y(j);
            ilp.objective[yj] = s.opex;
            for k in batch.vm_ids() {
                let xjk = ilp.x(j, k);
                ilp.objective[xjk] = s.usage_cost;
            }
        }

        // Eq. 17: Σ_j x_{jk} = 1.
        for k in batch.vm_ids() {
            let terms = infra.server_ids().map(|j| (ilp.x(j, k), 1.0)).collect();
            ilp.constraints.push(LinearConstraint {
                terms,
                relation: Relation::Eq,
                rhs: 1.0,
                kind: RowKind::Assignment,
            });
        }

        // Eq. 16: Σ_k C_{kl} x_{jk} ≤ P_{jl} F_{jl}.
        for j in infra.server_ids() {
            for l in infra.attrs().ids() {
                let terms: Vec<(usize, f64)> = batch
                    .vm_ids()
                    .map(|k| (ilp.x(j, k), batch.vm(k).demand[l.index()]))
                    .filter(|&(_, c)| c != 0.0)
                    .collect();
                ilp.constraints.push(LinearConstraint {
                    terms,
                    relation: Relation::Le,
                    rhs: infra.effective_capacity(j, l),
                    kind: RowKind::Capacity,
                });
            }
        }
        // Activation link: x_{jk} − y_j ≤ 0.
        for j in infra.server_ids() {
            for k in batch.vm_ids() {
                ilp.constraints.push(LinearConstraint {
                    terms: vec![(ilp.x(j, k), 1.0), (ilp.y(j), -1.0)],
                    relation: Relation::Le,
                    rhs: 0.0,
                    kind: RowKind::Activation,
                });
            }
        }

        // Affinity rules (Eqs. 9–14).
        for req in batch.requests() {
            for rule in &req.rules {
                let vms = rule.vms();
                match rule.kind() {
                    AffinityKind::SameServer => {
                        let anchor = vms[0];
                        for &other in &vms[1..] {
                            for j in infra.server_ids() {
                                ilp.constraints.push(LinearConstraint {
                                    terms: vec![(ilp.x(j, anchor), 1.0), (ilp.x(j, other), -1.0)],
                                    relation: Relation::Eq,
                                    rhs: 0.0,
                                    kind: RowKind::SameServer,
                                });
                            }
                        }
                    }
                    AffinityKind::SameDatacenter => {
                        let anchor = vms[0];
                        for &other in &vms[1..] {
                            for dc in infra.datacenters() {
                                let mut terms = Vec::new();
                                for j in dc.servers() {
                                    terms.push((ilp.x(j, anchor), 1.0));
                                    terms.push((ilp.x(j, other), -1.0));
                                }
                                ilp.constraints.push(LinearConstraint {
                                    terms,
                                    relation: Relation::Eq,
                                    rhs: 0.0,
                                    kind: RowKind::SameDatacenter,
                                });
                            }
                        }
                    }
                    AffinityKind::DifferentServer => {
                        for j in infra.server_ids() {
                            let terms = vms.iter().map(|&k| (ilp.x(j, k), 1.0)).collect();
                            ilp.constraints.push(LinearConstraint {
                                terms,
                                relation: Relation::Le,
                                rhs: 1.0,
                                kind: RowKind::DifferentServer,
                            });
                        }
                    }
                    AffinityKind::DifferentDatacenter => {
                        for dc in infra.datacenters() {
                            let mut terms = Vec::new();
                            for j in dc.servers() {
                                for &k in vms {
                                    terms.push((ilp.x(j, k), 1.0));
                                }
                            }
                            ilp.constraints.push(LinearConstraint {
                                terms,
                                relation: Relation::Le,
                                rhs: 1.0,
                                kind: RowKind::DifferentDatacenter,
                            });
                        }
                    }
                }
            }
        }

        ilp
    }

    /// Converts a (complete) assignment into a 0/1 solution vector with
    /// the implied activation variables.
    pub fn solution_of(&self, assignment: &Assignment) -> Vec<f64> {
        let mut solution = vec![0.0; self.n_vars];
        for (k, j) in assignment.iter_assigned() {
            solution[self.x(j, k)] = 1.0;
            solution[self.y(j)] = 1.0;
        }
        solution
    }

    /// All violated rows for a solution.
    pub fn violated_rows(&self, solution: &[f64]) -> Vec<&LinearConstraint> {
        self.constraints
            .iter()
            .filter(|c| !c.is_satisfied(solution))
            .collect()
    }

    /// Is the solution feasible for the program?
    pub fn is_feasible(&self, solution: &[f64]) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(solution))
    }

    /// Linear objective value.
    pub fn objective_value(&self, solution: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(solution)
            .map(|(c, x)| c * x)
            .sum()
    }

    /// Counts rows per kind — the shape summary used in reports.
    pub fn row_counts(&self) -> Vec<(RowKind, usize)> {
        let kinds = [
            RowKind::Assignment,
            RowKind::Capacity,
            RowKind::SameServer,
            RowKind::SameDatacenter,
            RowKind::DifferentServer,
            RowKind::DifferentDatacenter,
            RowKind::Activation,
        ];
        kinds
            .into_iter()
            .map(|kind| {
                (
                    kind,
                    self.constraints.iter().filter(|c| c.kind == kind).count(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityRule;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};
    use crate::request::{vm_spec, RequestBatch};

    fn problem_with_rules() -> AllocationProblem {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), profile.build_many(2)),
                ("dc1".into(), profile.build_many(2)),
            ],
        );
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(2.0, 1024.0, 10.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(0), VmId(1)],
            )],
        );
        batch.push_request(
            vec![vm_spec(2.0, 1024.0, 10.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentDatacenter,
                vec![VmId(2), VmId(3)],
            )],
        );
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn dimensions_and_row_counts() {
        let p = problem_with_rules();
        let ilp = IlpFormulation::from_problem(&p);
        // 4 servers × 4 VMs placement + 4 activation.
        assert_eq!(ilp.n_vars, 16 + 4);
        let counts: std::collections::HashMap<_, _> = ilp.row_counts().into_iter().collect();
        assert_eq!(counts[&RowKind::Assignment], 4); // one per VM
        assert_eq!(counts[&RowKind::Capacity], 12); // m * h
        assert_eq!(counts[&RowKind::Activation], 16); // m * n
        assert_eq!(counts[&RowKind::SameServer], 4); // one pair × m servers
        assert_eq!(counts[&RowKind::DifferentDatacenter], 2); // per dc
    }

    #[test]
    fn ilp_feasibility_matches_model_feasibility() {
        let p = problem_with_rules();
        let ilp = IlpFormulation::from_problem(&p);
        // Exhaustively sweep all 4^4 = 256 assignments.
        for code in 0..256usize {
            let genes: Vec<usize> = (0..4).map(|k| (code >> (2 * k)) & 0b11).collect();
            let a = Assignment::from_genes(&genes);
            let solution = ilp.solution_of(&a);
            assert_eq!(
                ilp.is_feasible(&solution),
                p.is_feasible(&a),
                "disagreement on genes {genes:?}: ilp rows {:?}",
                ilp.violated_rows(&solution)
                    .iter()
                    .map(|c| c.kind)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn ilp_objective_matches_usage_opex() {
        let p = problem_with_rules();
        let ilp = IlpFormulation::from_problem(&p);
        for code in [0usize, 27, 99, 255] {
            let genes: Vec<usize> = (0..4).map(|k| (code >> (2 * k)) & 0b11).collect();
            let a = Assignment::from_genes(&genes);
            let solution = ilp.solution_of(&a);
            let model_cost = p.evaluate(&a).usage_opex;
            let ilp_cost = ilp.objective_value(&solution);
            assert!(
                (model_cost - ilp_cost).abs() < 1e-9,
                "genes {genes:?}: model {model_cost} vs ilp {ilp_cost}"
            );
        }
    }

    #[test]
    fn incomplete_assignment_fails_assignment_rows() {
        let p = problem_with_rules();
        let ilp = IlpFormulation::from_problem(&p);
        let a = Assignment::unassigned(4);
        let solution = ilp.solution_of(&a);
        assert!(!ilp.is_feasible(&solution));
        assert!(ilp
            .violated_rows(&solution)
            .iter()
            .all(|c| c.kind == RowKind::Assignment));
    }

    #[test]
    fn activation_rows_force_y_when_x_set() {
        let p = problem_with_rules();
        let ilp = IlpFormulation::from_problem(&p);
        let mut a = Assignment::unassigned(4);
        for k in 0..4 {
            a.assign(VmId(k), ServerId(0));
        }
        let mut solution = ilp.solution_of(&a);
        // Tamper: clear the activation bit while x stays set.
        solution[ilp.y(ServerId(0))] = 0.0;
        assert!(!ilp.is_feasible(&solution));
        assert!(ilp
            .violated_rows(&solution)
            .iter()
            .any(|c| c.kind == RowKind::Activation));
    }
}
