//! Packed fleet state for production-scale replay.
//!
//! The windowed executor keeps a boxed `VmSpec` (three `Vec`s plus five
//! scalars) per resident VM inside per-tenant hash maps — fine at paper
//! scale (hundreds of VMs), ruinous when a trace replay holds hundreds of
//! thousands resident. This module flattens the hot state into
//! struct-of-arrays tables:
//!
//! * [`VmTable`] — one slot per resident VM: a row in a flat `live × h`
//!   demand matrix, a revenue, an owning server and tenant, and an
//!   intrusive per-tenant chain link. Slots recycle through a free list,
//!   so long-running replays do not grow the table past the peak
//!   residency. ~48 bytes per VM at `h = 3` instead of several hundred.
//! * [`ServerLoadTable`] — per-server used-capacity accumulators and
//!   hosted-VM counts, maintained incrementally on admit/depart.
//!
//! Neither table owns policy: admission, residual bookkeeping and cost
//! accounting live with the executor that drives them.

/// Sentinel for "no slot" in [`VmTable`] chains and the free list.
pub const NO_SLOT: u32 = u32::MAX;

/// Flat slot-recycled table of resident VMs.
#[derive(Clone, Debug)]
pub struct VmTable {
    h: usize,
    /// `slot × h` demand matrix (flat, row-major).
    demand: Vec<f64>,
    revenue: Vec<f64>,
    /// Owning server per slot (`NO_SLOT` marks a vacant slot).
    server: Vec<u32>,
    tenant: Vec<u64>,
    /// Intrusive singly-linked chain of the owning tenant's VMs.
    next: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl VmTable {
    /// An empty table for `h` attributes.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "need at least one attribute");
        Self {
            h,
            demand: Vec::new(),
            revenue: Vec::new(),
            server: Vec::new(),
            tenant: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Attribute count `h`.
    #[inline]
    pub fn attr_count(&self) -> usize {
        self.h
    }

    /// Resident VMs.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocated slots (peak residency; never shrinks).
    #[inline]
    pub fn slots(&self) -> usize {
        self.server.len()
    }

    /// Admits a VM, recycling a free slot when one exists. The new slot's
    /// chain link is `next` (the caller threads it into the tenant's
    /// chain). Returns the slot index.
    ///
    /// # Panics
    /// Panics if `demand` does not have `h` attributes or `server` is the
    /// [`NO_SLOT`] sentinel.
    pub fn insert(
        &mut self,
        tenant: u64,
        server: u32,
        demand: &[f64],
        revenue: f64,
        next: u32,
    ) -> u32 {
        assert_eq!(
            demand.len(),
            self.h,
            "demand must have {} attributes",
            self.h
        );
        assert_ne!(server, NO_SLOT, "server id collides with the sentinel");
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let base = slot as usize * self.h;
            self.demand[base..base + self.h].copy_from_slice(demand);
            self.revenue[slot as usize] = revenue;
            self.server[slot as usize] = server;
            self.tenant[slot as usize] = tenant;
            self.next[slot as usize] = next;
            return slot;
        }
        let slot = self.server.len() as u32;
        assert!(slot < NO_SLOT, "VM table overflow");
        self.demand.extend_from_slice(demand);
        self.revenue.push(revenue);
        self.server.push(server);
        self.tenant.push(tenant);
        self.next.push(next);
        slot
    }

    /// Releases `slot` back to the free list.
    ///
    /// # Panics
    /// Panics if the slot is already vacant.
    pub fn remove(&mut self, slot: u32) {
        assert_ne!(self.server[slot as usize], NO_SLOT, "slot {slot} is vacant");
        self.server[slot as usize] = NO_SLOT;
        self.next[slot as usize] = NO_SLOT;
        self.free.push(slot);
        self.live -= 1;
    }

    /// The demand row of `slot`.
    #[inline]
    pub fn demand(&self, slot: u32) -> &[f64] {
        let base = slot as usize * self.h;
        &self.demand[base..base + self.h]
    }

    /// Per-window revenue of `slot`.
    #[inline]
    pub fn revenue(&self, slot: u32) -> f64 {
        self.revenue[slot as usize]
    }

    /// Owning server of `slot` ([`NO_SLOT`] when vacant).
    #[inline]
    pub fn server(&self, slot: u32) -> u32 {
        self.server[slot as usize]
    }

    /// Owning tenant of `slot` (stale for vacant slots).
    #[inline]
    pub fn tenant(&self, slot: u32) -> u64 {
        self.tenant[slot as usize]
    }

    /// Next slot in the owning tenant's chain ([`NO_SLOT`] at the end).
    #[inline]
    pub fn next(&self, slot: u32) -> u32 {
        self.next[slot as usize]
    }

    /// `true` when the slot currently holds a VM.
    #[inline]
    pub fn is_live(&self, slot: u32) -> bool {
        self.server[slot as usize] != NO_SLOT
    }

    /// Iterator over the chain starting at `head` (pass a tenant's head
    /// slot; [`NO_SLOT`] yields an empty iterator).
    pub fn chain(&self, head: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = head;
        std::iter::from_fn(move || {
            if cur == NO_SLOT {
                return None;
            }
            let slot = cur;
            cur = self.next[slot as usize];
            Some(slot)
        })
    }
}

/// Incremental per-server load accumulators.
#[derive(Clone, Debug)]
pub struct ServerLoadTable {
    h: usize,
    /// `m × h` used capacity (flat, row-major).
    used: Vec<f64>,
    /// Hosted-VM count per server.
    hosted: Vec<u32>,
    /// Servers with at least one hosted VM.
    active: usize,
}

impl ServerLoadTable {
    /// Zeroed loads for `m` servers and `h` attributes.
    pub fn new(m: usize, h: usize) -> Self {
        assert!(h >= 1, "need at least one attribute");
        Self {
            h,
            used: vec![0.0; m * h],
            hosted: vec![0; m],
            active: 0,
        }
    }

    /// Number of servers `m`.
    #[inline]
    pub fn server_count(&self) -> usize {
        self.hosted.len()
    }

    /// Servers currently hosting at least one VM.
    #[inline]
    pub fn active_servers(&self) -> usize {
        self.active
    }

    /// Hosted-VM count of server `j`.
    #[inline]
    pub fn hosted(&self, j: u32) -> u32 {
        self.hosted[j as usize]
    }

    /// Used capacity row of server `j`.
    #[inline]
    pub fn used(&self, j: u32) -> &[f64] {
        let base = j as usize * self.h;
        &self.used[base..base + self.h]
    }

    /// Accounts one VM of `demand` onto server `j`. Returns `true` when
    /// the server transitioned idle → active (the opex edge).
    pub fn add(&mut self, j: u32, demand: &[f64]) -> bool {
        debug_assert_eq!(demand.len(), self.h);
        let base = j as usize * self.h;
        for (u, d) in self.used[base..base + self.h].iter_mut().zip(demand) {
            *u += d;
        }
        self.hosted[j as usize] += 1;
        if self.hosted[j as usize] == 1 {
            self.active += 1;
            return true;
        }
        false
    }

    /// Removes one VM of `demand` from server `j`, clamping rounding
    /// residue at zero. Returns `true` when the server transitioned
    /// active → idle.
    pub fn remove(&mut self, j: u32, demand: &[f64]) -> bool {
        debug_assert_eq!(demand.len(), self.h);
        let base = j as usize * self.h;
        for (u, d) in self.used[base..base + self.h].iter_mut().zip(demand) {
            *u = (*u - d).max(0.0);
        }
        let count = &mut self.hosted[j as usize];
        assert!(*count > 0, "server {j} hosts no VMs");
        *count -= 1;
        if *count == 0 {
            // Snap accumulated float residue so an empty server reads
            // exactly zero load.
            self.used[base..base + self.h].fill(0.0);
            self.active -= 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_recycle_through_the_free_list() {
        let mut t = VmTable::new(3);
        let a = t.insert(1, 0, &[1.0, 2.0, 3.0], 5.0, NO_SLOT);
        let b = t.insert(1, 0, &[2.0, 4.0, 6.0], 7.0, a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.live(), 2);
        assert_eq!(t.next(b), a);
        t.remove(a);
        assert_eq!(t.live(), 1);
        assert!(!t.is_live(a));
        let c = t.insert(2, 3, &[9.0, 9.0, 9.0], 1.0, NO_SLOT);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(t.slots(), 2, "table does not grow past peak residency");
        assert_eq!(t.demand(c), &[9.0, 9.0, 9.0]);
        assert_eq!(t.tenant(c), 2);
        assert_eq!(t.server(c), 3);
    }

    #[test]
    fn chains_walk_a_tenant_front_to_back() {
        let mut t = VmTable::new(2);
        let mut head = NO_SLOT;
        for i in 0..4 {
            head = t.insert(7, i, &[1.0, 1.0], 2.0, head);
        }
        let slots: Vec<u32> = t.chain(head).collect();
        assert_eq!(slots, vec![3, 2, 1, 0]);
        assert_eq!(t.chain(NO_SLOT).count(), 0);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn double_remove_is_caught() {
        let mut t = VmTable::new(1);
        let s = t.insert(0, 0, &[1.0], 1.0, NO_SLOT);
        t.remove(s);
        t.remove(s);
    }

    #[test]
    fn loads_accumulate_and_track_active_servers() {
        let mut loads = ServerLoadTable::new(3, 2);
        assert!(loads.add(1, &[2.0, 10.0]), "idle -> active");
        assert!(!loads.add(1, &[1.0, 5.0]));
        assert_eq!(loads.used(1), &[3.0, 15.0]);
        assert_eq!(loads.hosted(1), 2);
        assert_eq!(loads.active_servers(), 1);
        assert!(!loads.remove(1, &[2.0, 10.0]));
        assert!(loads.remove(1, &[1.0, 5.0]), "active -> idle");
        assert_eq!(loads.used(1), &[0.0, 0.0], "empty server reads zero");
        assert_eq!(loads.active_servers(), 0);
    }

    #[test]
    fn float_residue_clamps_at_zero() {
        let mut loads = ServerLoadTable::new(1, 1);
        loads.add(0, &[0.1]);
        loads.add(0, &[0.2]);
        loads.remove(0, &[0.2]);
        loads.remove(0, &[0.1000001]);
        assert_eq!(loads.used(0), &[0.0]);
    }
}
