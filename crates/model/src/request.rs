//! Consumer-side demand: requested virtual resources `N = {1, …, n}` with
//! their demand matrix `C` (Eq. 2), QoS guarantees `C^Q_k`, downtime
//! penalties `C^U_k` and migration costs `M_k` (Table I), grouped into user
//! *requests* that carry affinity/anti-affinity rules.

use crate::affinity::AffinityRule;
use crate::attr::AttrId;
use crate::matrix::Matrix;

/// Global index of a requested virtual resource (the paper's `k ∈ N`).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct VmId(pub usize);

impl VmId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Index of a user request within a batch.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct RequestId(pub usize);

impl RequestId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One requested virtual resource (VM, container, storage volume, …).
#[derive(Clone, Debug, PartialEq)]
pub struct VmSpec {
    /// Demand per attribute — row `k` of the paper's `C` matrix.
    pub demand: Vec<f64>,
    /// Quality-of-service level guaranteed to the consumer (`C^Q_k`,
    /// in `(0, 1)`): the minimum per-attribute QoS the provider promised.
    pub qos_guarantee: f64,
    /// Downtime penalty `C^U_k` paid by the provider when the guarantee is
    /// not respected.
    pub downtime_cost: f64,
    /// Cost `M_k` of migrating this resource in a reconfiguration plan.
    pub migration_cost: f64,
    /// Revenue the provider earns per window for hosting this resource —
    /// the consumer's price. Not in the paper's symbol table, but its
    /// evaluation argues in revenue terms ("designed to generate the
    /// largest revenues for the providers"); this field makes that claim
    /// measurable (net revenue = Σ revenue over accepted − Eq. 15 costs).
    pub revenue: f64,
}

impl VmSpec {
    /// Validates the spec against an attribute count `h`.
    pub fn validate(&self, h: usize) -> Result<(), String> {
        if self.demand.len() != h {
            return Err(format!(
                "demand must have {h} attributes, got {}",
                self.demand.len()
            ));
        }
        for &d in &self.demand {
            if !d.is_finite() || d < 0.0 {
                return Err(format!("demand must be finite and >= 0, got {d}"));
            }
        }
        if !(0.0..=1.0).contains(&self.qos_guarantee) {
            return Err(format!(
                "qos guarantee must be in [0,1], got {}",
                self.qos_guarantee
            ));
        }
        if !self.downtime_cost.is_finite() || self.downtime_cost < 0.0 {
            return Err(format!(
                "downtime cost must be >= 0, got {}",
                self.downtime_cost
            ));
        }
        if !self.migration_cost.is_finite() || self.migration_cost < 0.0 {
            return Err(format!(
                "migration cost must be >= 0, got {}",
                self.migration_cost
            ));
        }
        if !self.revenue.is_finite() || self.revenue < 0.0 {
            return Err(format!("revenue must be >= 0, got {}", self.revenue));
        }
        Ok(())
    }

    /// Demand for attribute `l` (`C_{kl}`).
    #[inline]
    pub fn demand_for(&self, l: AttrId) -> f64 {
        self.demand[l.index()]
    }
}

/// A user request: a set of virtual resources plus the affinity and
/// anti-affinity rules that bind them (Section III of the paper).
///
/// A request is the unit of acceptance/rejection in the evaluation: either
/// all its resources are placed respecting every rule, or the request is
/// rejected as a whole.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Stable identifier within the batch.
    pub id: RequestId,
    /// The virtual resources belonging to this request.
    pub vms: Vec<VmId>,
    /// Affinity / anti-affinity rules over those resources.
    pub rules: Vec<AffinityRule>,
}

/// A batch of user requests processed inside one cyclic time window.
#[derive(Clone, Debug, Default)]
pub struct RequestBatch {
    vms: Vec<VmSpec>,
    requests: Vec<Request>,
    /// `vm_request[k]` = owning request of VM `k`.
    vm_request: Vec<RequestId>,
}

impl RequestBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a request made of `vms` with `rules`; returns its id.
    ///
    /// Rules may only reference the VMs being added here; this is checked.
    pub fn push_request(&mut self, vms: Vec<VmSpec>, rules: Vec<AffinityRule>) -> RequestId {
        assert!(
            !vms.is_empty(),
            "a request must contain at least one resource"
        );
        let id = RequestId(self.requests.len());
        let first = self.vms.len();
        let vm_ids: Vec<VmId> = (first..first + vms.len()).map(VmId).collect();
        for rule in &rules {
            for vm in rule.vms() {
                assert!(
                    vm_ids.contains(vm),
                    "rule references VM {vm:?} outside of request {id:?}"
                );
            }
        }
        for spec in vms {
            self.vms.push(spec);
            self.vm_request.push(id);
        }
        self.requests.push(Request {
            id,
            vms: vm_ids,
            rules,
        });
        id
    }

    /// Total number of requested virtual resources `n`.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of user requests in the batch.
    #[inline]
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// Spec of VM `k`.
    #[inline]
    pub fn vm(&self, k: VmId) -> &VmSpec {
        &self.vms[k.index()]
    }

    /// All VM specs, indexed by [`VmId`].
    pub fn vms(&self) -> &[VmSpec] {
        &self.vms
    }

    /// All requests.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Request `r`.
    #[inline]
    pub fn request(&self, r: RequestId) -> &Request {
        &self.requests[r.index()]
    }

    /// Owning request of VM `k`.
    #[inline]
    pub fn request_of(&self, k: VmId) -> RequestId {
        self.vm_request[k.index()]
    }

    /// Iterator over all VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> {
        (0..self.vms.len()).map(VmId)
    }

    /// Iterator over all request ids.
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> {
        (0..self.requests.len()).map(RequestId)
    }

    /// Materialises the consumer demand matrix `C` (`n × h`).
    ///
    /// # Panics
    /// Panics if the batch is empty or VMs disagree on attribute count.
    pub fn demand_matrix(&self) -> Matrix<f64> {
        assert!(!self.vms.is_empty(), "empty batch has no demand matrix");
        let h = self.vms[0].demand.len();
        Matrix::from_fn(self.vms.len(), h, |k, l| self.vms[k].demand[l])
    }

    /// Validates every VM spec against attribute count `h`.
    pub fn validate(&self, h: usize) -> Result<(), String> {
        for (k, vm) in self.vms.iter().enumerate() {
            vm.validate(h).map_err(|e| format!("vm {k}: {e}"))?;
        }
        Ok(())
    }

    /// Builds a new batch containing only the requests at `indices`, in
    /// that order. VM ids and request ids are renumbered densely from 0;
    /// affinity rules are rebased onto the new [`VmId`]s. Used by the
    /// sharded scheduler to hand each shard its slice of a window's
    /// arrivals as a self-contained batch.
    ///
    /// # Panics
    /// Panics if an index is out of range or repeated.
    pub fn subset(&self, indices: &[usize]) -> RequestBatch {
        let mut seen = vec![false; self.requests.len()];
        let mut out = RequestBatch::new();
        for &r in indices {
            assert!(r < self.requests.len(), "request index {r} out of range");
            assert!(!seen[r], "request index {r} repeated in subset");
            seen[r] = true;
            let req = &self.requests[r];
            // Old VmId → position within the request == new VmId offset
            // from the subset batch's current vm count.
            let base = out.vms.len();
            let vms: Vec<VmSpec> = req
                .vms
                .iter()
                .map(|&k| self.vms[k.index()].clone())
                .collect();
            let rules: Vec<AffinityRule> = req
                .rules
                .iter()
                .map(|rule| {
                    let rebased = rule
                        .vms()
                        .iter()
                        .map(|v| {
                            let pos = req
                                .vms
                                .iter()
                                .position(|&k| k == *v)
                                .expect("rule references VM outside its request");
                            VmId(base + pos)
                        })
                        .collect();
                    AffinityRule::new(rule.kind(), rebased)
                })
                .collect();
            out.push_request(vms, rules);
        }
        out
    }

    /// Total demand across the batch per attribute — used by scenario
    /// generators to target utilisation.
    pub fn total_demand(&self, h: usize) -> Vec<f64> {
        let mut tot = vec![0.0; h];
        for vm in &self.vms {
            for (l, t) in tot.iter_mut().enumerate() {
                *t += vm.demand.get(l).copied().unwrap_or(0.0);
            }
        }
        tot
    }
}

/// Convenience constructor for a VM spec with standard attributes
/// (CPU cores, RAM MiB, disk GiB) and typical cost parameters.
pub fn vm_spec(cpu: f64, ram: f64, disk: f64) -> VmSpec {
    VmSpec {
        demand: vec![cpu, ram, disk],
        qos_guarantee: 0.95,
        downtime_cost: 5.0,
        migration_cost: 1.0,
        // Simple linear price dominated by CPU, floored above typical
        // usage cost so hosting is profitable by default.
        revenue: 2.0 + cpu * 1.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::{AffinityKind, AffinityRule};

    #[test]
    fn push_request_assigns_global_vm_ids() {
        let mut b = RequestBatch::new();
        let r0 = b.push_request(vec![vm_spec(1.0, 1024.0, 10.0); 2], vec![]);
        let r1 = b.push_request(vec![vm_spec(2.0, 2048.0, 20.0); 3], vec![]);
        assert_eq!(b.vm_count(), 5);
        assert_eq!(b.request(r0).vms, vec![VmId(0), VmId(1)]);
        assert_eq!(b.request(r1).vms, vec![VmId(2), VmId(3), VmId(4)]);
        assert_eq!(b.request_of(VmId(3)), r1);
    }

    #[test]
    fn rules_must_reference_own_vms() {
        let mut b = RequestBatch::new();
        b.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![]);
        let rule = AffinityRule::new(AffinityKind::SameServer, vec![VmId(0), VmId(1)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![rule]);
        }));
        assert!(result.is_err(), "cross-request rule should panic");
    }

    #[test]
    fn demand_matrix_matches_specs() {
        let mut b = RequestBatch::new();
        b.push_request(
            vec![vm_spec(1.0, 1024.0, 10.0), vm_spec(2.0, 2048.0, 20.0)],
            vec![],
        );
        let c = b.demand_matrix();
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert_eq!(c[(1, 1)], 2048.0);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = vm_spec(1.0, 1.0, 1.0);
        spec.qos_guarantee = 1.5;
        assert!(spec.validate(3).is_err());
        let mut spec2 = vm_spec(1.0, 1.0, 1.0);
        spec2.demand[0] = -1.0;
        assert!(spec2.validate(3).is_err());
        assert!(vm_spec(1.0, 1.0, 1.0).validate(2).is_err());
    }

    #[test]
    fn total_demand_sums_attributes() {
        let mut b = RequestBatch::new();
        b.push_request(
            vec![vm_spec(1.0, 10.0, 100.0), vm_spec(2.0, 20.0, 200.0)],
            vec![],
        );
        assert_eq!(b.total_demand(3), vec![3.0, 30.0, 300.0]);
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_request_rejected() {
        let mut b = RequestBatch::new();
        b.push_request(vec![], vec![]);
    }

    #[test]
    fn subset_renumbers_vms_and_rebases_rules() {
        let mut b = RequestBatch::new();
        b.push_request(vec![vm_spec(1.0, 1.0, 1.0); 2], vec![]);
        b.push_request(
            vec![vm_spec(2.0, 2.0, 2.0); 3],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(2), VmId(4)],
            )],
        );
        b.push_request(vec![vm_spec(3.0, 3.0, 3.0)], vec![]);

        // Take requests 2 and 1, in that order.
        let s = b.subset(&[2, 1]);
        assert_eq!(s.request_count(), 2);
        assert_eq!(s.vm_count(), 4);
        assert_eq!(s.request(RequestId(0)).vms, vec![VmId(0)]);
        assert_eq!(s.vm(VmId(0)).demand, vec![3.0, 3.0, 3.0]);
        assert_eq!(s.request(RequestId(1)).vms, vec![VmId(1), VmId(2), VmId(3)]);
        // Old rule over VmId(2)/VmId(4) (positions 0 and 2 within its
        // request) must now point at VmId(1)/VmId(3).
        let rule = &s.request(RequestId(1)).rules[0];
        assert_eq!(rule.kind(), AffinityKind::DifferentServer);
        assert_eq!(rule.vms(), &[VmId(1), VmId(3)]);
        assert_eq!(s.request_of(VmId(3)), RequestId(1));
    }

    #[test]
    fn subset_of_everything_matches_original_shape() {
        let mut b = RequestBatch::new();
        b.push_request(vec![vm_spec(1.0, 10.0, 100.0)], vec![]);
        b.push_request(vec![vm_spec(2.0, 20.0, 200.0); 2], vec![]);
        let s = b.subset(&[0, 1]);
        assert_eq!(s.vm_count(), b.vm_count());
        assert_eq!(s.request_count(), b.request_count());
        assert_eq!(s.total_demand(3), b.total_demand(3));
    }

    #[test]
    #[should_panic(expected = "repeated in subset")]
    fn subset_rejects_duplicates() {
        let mut b = RequestBatch::new();
        b.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![]);
        b.subset(&[0, 0]);
    }
}
