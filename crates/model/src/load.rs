//! Server load computation (Eq. 25) with incremental updates.
//!
//! The paper defines the load of attribute `l` on server `j` as
//! `L_{jl} = Σ_k C_{kl}·X_{ijk} / P_{jl}`. Because the capacity constraint
//! (Eq. 4/16) bounds usage by the *effective* capacity `P_{jl}·F_{jl}`, we
//! normalise by the effective capacity so that `L = 1` exactly at the
//! admission limit; this keeps the QoS knee `L^M ∈ [0,1)` meaningful.
//!
//! [`LoadTracker`] supports O(h) incremental add/remove of a VM, which is
//! what makes the tabu-search repair loop and the CP packing propagator
//! cheap: neither ever recomputes a full `m × h` matrix per move.

use crate::assignment::Assignment;
use crate::attr::AttrId;
use crate::infrastructure::{Infrastructure, ServerId};
use crate::matrix::Matrix;
use crate::request::{RequestBatch, VmId};

/// Tracks per-server, per-attribute resource usage and derived load.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    /// `m × h` absolute usage (sum of hosted demands).
    used: Matrix<f64>,
    /// Number of VMs hosted per server (for opex activation and usage cost).
    hosted: Vec<usize>,
}

impl LoadTracker {
    /// An empty tracker for `m` servers and `h` attributes.
    pub fn new(m: usize, h: usize) -> Self {
        Self {
            used: Matrix::zeros(m, h),
            hosted: vec![0; m],
        }
    }

    /// Builds a tracker reflecting a full assignment.
    pub fn from_assignment(
        assignment: &Assignment,
        batch: &RequestBatch,
        infra: &Infrastructure,
    ) -> Self {
        let mut t = Self::new(infra.server_count(), infra.attr_count());
        for (k, j) in assignment.iter_assigned() {
            t.add(k, j, batch);
        }
        t
    }

    /// Accounts VM `k`'s demand onto server `j`.
    #[inline]
    pub fn add(&mut self, k: VmId, j: ServerId, batch: &RequestBatch) {
        let demand = &batch.vm(k).demand;
        let row = self.used.row_mut(j.index());
        for (u, d) in row.iter_mut().zip(demand) {
            *u += d;
        }
        self.hosted[j.index()] += 1;
    }

    /// Removes VM `k`'s demand from server `j`.
    #[inline]
    pub fn remove(&mut self, k: VmId, j: ServerId, batch: &RequestBatch) {
        let demand = &batch.vm(k).demand;
        let row = self.used.row_mut(j.index());
        for (u, d) in row.iter_mut().zip(demand) {
            *u = (*u - d).max(0.0); // clamp fp noise
        }
        debug_assert!(self.hosted[j.index()] > 0, "removing from empty server");
        self.hosted[j.index()] -= 1;
    }

    /// Absolute usage of attribute `l` on server `j`.
    #[inline]
    pub fn used(&self, j: ServerId, l: AttrId) -> f64 {
        *self.used.get(j.index(), l.index())
    }

    /// Usage row of server `j`.
    #[inline]
    pub fn used_row(&self, j: ServerId) -> &[f64] {
        self.used.row(j.index())
    }

    /// Relative load `L_{jl}` (Eq. 25, normalised by effective capacity).
    /// Returns `f64::INFINITY` when a zero-capacity attribute has usage.
    #[inline]
    pub fn load(&self, j: ServerId, l: AttrId, infra: &Infrastructure) -> f64 {
        let cap = infra.effective_capacity(j, l);
        let used = self.used(j, l);
        if cap > 0.0 {
            used / cap
        } else if used > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Number of VMs hosted on server `j`.
    #[inline]
    pub fn hosted(&self, j: ServerId) -> usize {
        self.hosted[j.index()]
    }

    /// `true` when server `j` hosts at least one VM (activates opex `E_j`).
    #[inline]
    pub fn is_active(&self, j: ServerId) -> bool {
        self.hosted[j.index()] > 0
    }

    /// Would placing VM `k` on server `j` keep every attribute within the
    /// capacity constraint (Eq. 4/16)? O(h).
    pub fn fits(&self, k: VmId, j: ServerId, batch: &RequestBatch, infra: &Infrastructure) -> bool {
        let demand = &batch.vm(k).demand;
        let used = self.used.row(j.index());
        let cap = infra.effective_row(j);
        used.iter()
            .zip(demand)
            .zip(cap)
            .all(|((u, d), c)| u + d <= c + 1e-9)
    }

    /// Attributes of server `j` whose usage exceeds effective capacity,
    /// with the excess amount. Empty when the server satisfies Eq. 4/16.
    pub fn overloads(&self, j: ServerId, infra: &Infrastructure) -> Vec<(AttrId, f64)> {
        let mut out = Vec::new();
        self.overloads_into(j, infra, &mut out);
        out
    }

    /// As [`overloads`](Self::overloads) but writing into a caller-owned
    /// buffer — the allocation-free form the delta evaluator refreshes
    /// touched servers with.
    pub fn overloads_into(
        &self,
        j: ServerId,
        infra: &Infrastructure,
        out: &mut Vec<(AttrId, f64)>,
    ) {
        out.clear();
        let used = self.used.row(j.index());
        let cap = infra.effective_row(j);
        for (l, (u, c)) in used.iter().zip(cap).enumerate() {
            if u - c > 1e-9 {
                out.push((AttrId(l), u - c));
            }
        }
    }

    /// Recomputes server `j`'s usage row exactly from the VMs it hosts,
    /// added in slice order. Feeding the hosted VMs in ascending [`VmId`]
    /// order reproduces, bit for bit, the row [`from_assignment`] would
    /// build — which is what lets the delta evaluator stay bit-identical
    /// to a from-scratch rebuild after any apply/undo history.
    ///
    /// [`from_assignment`]: Self::from_assignment
    pub fn recompute_server(&mut self, j: ServerId, vms: &[VmId], batch: &RequestBatch) {
        let row = self.used.row_mut(j.index());
        row.fill(0.0);
        for &k in vms {
            let demand = &batch.vm(k).demand;
            for (u, d) in row.iter_mut().zip(demand) {
                *u += d;
            }
        }
        self.hosted[j.index()] = vms.len();
    }

    /// Servers violating the capacity constraint — the paper's
    /// `exceedingDetection` step of the tabu repair (Fig. 5, line 2).
    pub fn exceeding_servers(&self, infra: &Infrastructure) -> Vec<ServerId> {
        infra
            .server_ids()
            .filter(|&j| !self.overloads(j, infra).is_empty())
            .collect()
    }

    /// The full `m × h` relative load matrix (Eq. 25), materialised.
    pub fn load_matrix(&self, infra: &Infrastructure) -> Matrix<f64> {
        Matrix::from_fn(self.used.rows(), self.used.cols(), |j, l| {
            self.load(ServerId(j), AttrId(l), infra)
        })
    }

    /// Number of active (non-empty) servers.
    pub fn active_servers(&self) -> usize {
        self.hosted.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};
    use crate::request::vm_spec;

    fn setup() -> (Infrastructure, RequestBatch) {
        let p = ServerProfile::commodity(3); // 32 cpu * 0.9 = 28.8 effective
        let infra = Infrastructure::new(AttrSet::standard(), vec![("dc0".into(), p.build_many(2))]);
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(4.0, 8192.0, 100.0), vm_spec(8.0, 16384.0, 200.0)],
            vec![],
        );
        (infra, batch)
    }

    #[test]
    fn add_remove_is_inverse() {
        let (infra, batch) = setup();
        let mut t = LoadTracker::new(2, 3);
        t.add(VmId(0), ServerId(0), &batch);
        t.add(VmId(1), ServerId(0), &batch);
        assert_eq!(t.used(ServerId(0), AttrId(0)), 12.0);
        assert_eq!(t.hosted(ServerId(0)), 2);
        t.remove(VmId(0), ServerId(0), &batch);
        assert_eq!(t.used(ServerId(0), AttrId(0)), 8.0);
        t.remove(VmId(1), ServerId(0), &batch);
        assert_eq!(t.used(ServerId(0), AttrId(0)), 0.0);
        assert!(!t.is_active(ServerId(0)));
        let _ = infra;
    }

    #[test]
    fn load_is_usage_over_effective_capacity() {
        let (infra, batch) = setup();
        let mut t = LoadTracker::new(2, 3);
        t.add(VmId(0), ServerId(0), &batch);
        // 4 vCPU over 28.8 effective
        assert!((t.load(ServerId(0), AttrId(0), &infra) - 4.0 / 28.8).abs() < 1e-12);
        assert_eq!(t.load(ServerId(1), AttrId(0), &infra), 0.0);
    }

    #[test]
    fn fits_respects_capacity_boundary() {
        let (infra, mut batch) = setup();
        // a VM demanding exactly the remaining effective CPU
        batch.push_request(vec![vm_spec(28.8, 1.0, 1.0)], vec![]);
        batch.push_request(vec![vm_spec(28.9, 1.0, 1.0)], vec![]);
        let t = LoadTracker::new(2, 3);
        assert!(t.fits(VmId(2), ServerId(0), &batch, &infra)); // exactly fits
        assert!(!t.fits(VmId(3), ServerId(0), &batch, &infra)); // exceeds
    }

    #[test]
    fn overloads_and_exceeding_servers_detect_violations() {
        let (infra, mut batch) = setup();
        batch.push_request(vec![vm_spec(30.0, 1.0, 1.0)], vec![]);
        let mut t = LoadTracker::new(2, 3);
        t.add(VmId(2), ServerId(1), &batch);
        let over = t.overloads(ServerId(1), &infra);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].0, AttrId(0));
        assert!((over[0].1 - (30.0 - 28.8)).abs() < 1e-9);
        assert_eq!(t.exceeding_servers(&infra), vec![ServerId(1)]);
        assert!(t.overloads(ServerId(0), &infra).is_empty());
    }

    #[test]
    fn from_assignment_matches_incremental() {
        let (infra, batch) = setup();
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(1));
        let t = LoadTracker::from_assignment(&a, &batch, &infra);
        assert_eq!(t.used(ServerId(0), AttrId(0)), 4.0);
        assert_eq!(t.used(ServerId(1), AttrId(0)), 8.0);
        assert_eq!(t.active_servers(), 2);
    }

    #[test]
    fn zero_capacity_attribute_yields_infinite_load_when_used() {
        let attrs = AttrSet::standard();
        let mut profile = ServerProfile::commodity(3);
        profile.capacity[2] = 0.0;
        let infra = Infrastructure::new(attrs, vec![("dc".into(), vec![profile.build()])]);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![]);
        let mut t = LoadTracker::new(1, 3);
        t.add(VmId(0), ServerId(0), &batch);
        assert!(t.load(ServerId(0), AttrId(2), &infra).is_infinite());
    }

    #[test]
    fn load_matrix_has_model_shape() {
        let (infra, batch) = setup();
        let mut t = LoadTracker::new(2, 3);
        t.add(VmId(0), ServerId(0), &batch);
        let l = t.load_matrix(&infra);
        assert_eq!((l.rows(), l.cols()), (2, 3));
        assert!(l.is_nonnegative());
    }
}
