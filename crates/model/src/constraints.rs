//! Hard-constraint checking (Eqs. 16–21) and violation reporting.
//!
//! The checker produces a [`ViolationReport`] with one entry per violated
//! constraint instance — the quantity plotted in the paper's Fig. 10 — and
//! a graded total *degree* used by constraint-domination in the
//! evolutionary engine and by the tabu repair to rank candidate fixes.

use crate::affinity::AffinityKind;
use crate::assignment::Assignment;
use crate::attr::AttrId;
use crate::infrastructure::{Infrastructure, ServerId};
use crate::load::LoadTracker;
use crate::request::{RequestBatch, RequestId, VmId};
use std::fmt;

/// One violated constraint instance.
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// Server `server` exceeds effective capacity on `attr` by `excess`
    /// (Eq. 4/16).
    Capacity {
        /// Overloaded server.
        server: ServerId,
        /// Attribute exceeded.
        attr: AttrId,
        /// Amount above effective capacity.
        excess: f64,
    },
    /// VM `vm` is not placed anywhere (Eq. 5/17).
    Unassigned {
        /// The unplaced resource.
        vm: VmId,
    },
    /// An affinity / anti-affinity rule of request `request` is broken
    /// (Eqs. 9–12 / 18–21).
    Affinity {
        /// Owning request.
        request: RequestId,
        /// Kind of the broken rule.
        kind: AffinityKind,
        /// Graded degree: number of offending resources/pairs.
        degree: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Capacity {
                server,
                attr,
                excess,
            } => {
                write!(
                    f,
                    "capacity: server {} attr {} exceeded by {:.3}",
                    server.0, attr.0, excess
                )
            }
            Violation::Unassigned { vm } => write!(f, "unassigned: vm {}", vm.0),
            Violation::Affinity {
                request,
                kind,
                degree,
            } => {
                write!(
                    f,
                    "affinity: request {} rule {} degree {}",
                    request.0,
                    kind.label(),
                    degree
                )
            }
        }
    }
}

/// All violations of an assignment, plus aggregate measures.
#[derive(Clone, Debug, Default)]
pub struct ViolationReport {
    violations: Vec<Violation>,
}

impl ViolationReport {
    /// `true` when the assignment satisfies every hard constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violated constraint instances (the Fig. 10 metric).
    pub fn count(&self) -> usize {
        self.violations.len()
    }

    /// The individual violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Graded total degree: capacity excesses are normalised per-attribute,
    /// affinity degrees and unassigned VMs count 1 per offender. Used as
    /// the constraint-domination key (smaller = closer to feasible).
    pub fn degree(&self) -> f64 {
        self.violations
            .iter()
            .map(|v| match v {
                Violation::Capacity { excess, .. } => capacity_degree_term(*excess),
                Violation::Unassigned { .. } => 1.0,
                Violation::Affinity { degree, .. } => *degree as f64,
            })
            .sum()
    }

    /// Requests having at least one violated rule or unplaced/overloaded VM.
    ///
    /// `batch` must be the batch the report was generated from.
    pub fn offending_requests(
        &self,
        batch: &RequestBatch,
        assignment: &Assignment,
        tracker: &LoadTracker,
        infra: &Infrastructure,
    ) -> Vec<RequestId> {
        let mut flags = vec![false; batch.request_count()];
        for v in &self.violations {
            match v {
                Violation::Unassigned { vm } => flags[batch.request_of(*vm).index()] = true,
                Violation::Affinity { request, .. } => flags[request.index()] = true,
                Violation::Capacity { server, .. } => {
                    // Every request with a VM on the overloaded server is
                    // implicated (any of them could be the one to move).
                    for (k, j) in assignment.iter_assigned() {
                        if j == *server {
                            flags[batch.request_of(k).index()] = true;
                        }
                    }
                    let _ = (tracker, infra);
                }
            }
        }
        flags
            .iter()
            .enumerate()
            .filter_map(|(r, &f)| f.then_some(RequestId(r)))
            .collect()
    }
}

/// The degree contributed by one capacity violation: a unit for the broken
/// constraint instance plus the raw excess. Factored out so the full
/// [`ViolationReport::degree`] and the incremental [`DeltaEvaluator`]
/// compute the exact same expression and stay bit-identical by
/// construction.
///
/// [`DeltaEvaluator`]: crate::delta::DeltaEvaluator
#[inline]
pub fn capacity_degree_term(excess: f64) -> f64 {
    1.0 + excess.max(0.0)
}

/// Checks every hard constraint of the model (Eqs. 16–21) and returns the
/// full violation report.
pub fn check(
    assignment: &Assignment,
    batch: &RequestBatch,
    infra: &Infrastructure,
) -> ViolationReport {
    let tracker = LoadTracker::from_assignment(assignment, batch, infra);
    check_with_tracker(assignment, &tracker, batch, infra)
}

/// As [`check`] but reusing a tracker (hot path).
pub fn check_with_tracker(
    assignment: &Assignment,
    tracker: &LoadTracker,
    batch: &RequestBatch,
    infra: &Infrastructure,
) -> ViolationReport {
    let mut violations = Vec::new();

    // Eq. 5/17 — every VM placed exactly once (structurally at most once).
    for k in batch.vm_ids() {
        if assignment.server_of(k).is_none() {
            violations.push(Violation::Unassigned { vm: k });
        }
    }

    // Eq. 4/16 — capacity per server and attribute.
    for j in infra.server_ids() {
        for (attr, excess) in tracker.overloads(j, infra) {
            violations.push(Violation::Capacity {
                server: j,
                attr,
                excess,
            });
        }
    }

    // Eqs. 9–12 / 18–21 — affinity and anti-affinity rules.
    for req in batch.requests() {
        for rule in &req.rules {
            let degree = rule.violation_degree(assignment, infra);
            if degree > 0 {
                violations.push(Violation::Affinity {
                    request: req.id,
                    kind: rule.kind(),
                    degree,
                });
            }
        }
    }

    ViolationReport { violations }
}

/// Fast feasibility test without building a report (used inside search
/// loops where only the boolean matters).
pub fn is_feasible(assignment: &Assignment, batch: &RequestBatch, infra: &Infrastructure) -> bool {
    if !assignment.is_complete() {
        return false;
    }
    let tracker = LoadTracker::from_assignment(assignment, batch, infra);
    for j in infra.server_ids() {
        if !tracker.overloads(j, infra).is_empty() {
            return false;
        }
    }
    for req in batch.requests() {
        for rule in &req.rules {
            if !rule.is_satisfied(assignment, infra) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityRule;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};
    use crate::request::vm_spec;

    fn infra() -> Infrastructure {
        let p = ServerProfile::commodity(3);
        Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), p.build_many(2)),
                ("dc1".into(), p.build_many(2)),
            ],
        )
    }

    #[test]
    fn feasible_assignment_has_empty_report() {
        let infra = infra();
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(2.0, 1024.0, 10.0); 2], vec![]);
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(1));
        let report = check(&a, &batch, &infra);
        assert!(report.is_feasible());
        assert_eq!(report.count(), 0);
        assert_eq!(report.degree(), 0.0);
        assert!(is_feasible(&a, &batch, &infra));
    }

    #[test]
    fn unassigned_vm_is_reported() {
        let infra = infra();
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 1.0, 1.0); 2], vec![]);
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        let report = check(&a, &batch, &infra);
        assert_eq!(report.count(), 1);
        assert!(matches!(report.violations()[0], Violation::Unassigned { vm } if vm == VmId(1)));
        assert!(!is_feasible(&a, &batch, &infra));
    }

    #[test]
    fn capacity_overload_is_reported_per_attribute() {
        let infra = infra();
        let mut batch = RequestBatch::new();
        // 30 cpu on 28.8 effective and 2.2 TiB disk on 1843.2 effective.
        batch.push_request(vec![vm_spec(30.0, 1.0, 2200.0)], vec![]);
        let mut a = Assignment::unassigned(1);
        a.assign(VmId(0), ServerId(0));
        let report = check(&a, &batch, &infra);
        let caps: Vec<_> = report
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::Capacity { .. }))
            .collect();
        assert_eq!(caps.len(), 2, "cpu and disk both exceeded: {report:?}");
        assert!(report.degree() > 2.0);
    }

    #[test]
    fn broken_affinity_rule_is_reported_with_request() {
        let infra = infra();
        let mut batch = RequestBatch::new();
        let rule = AffinityRule::new(AffinityKind::SameServer, vec![VmId(0), VmId(1)]);
        let r = batch.push_request(vec![vm_spec(1.0, 1.0, 1.0); 2], vec![rule]);
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(1));
        let report = check(&a, &batch, &infra);
        assert_eq!(report.count(), 1);
        match &report.violations()[0] {
            Violation::Affinity {
                request,
                kind,
                degree,
            } => {
                assert_eq!(*request, r);
                assert_eq!(*kind, AffinityKind::SameServer);
                assert_eq!(*degree, 1);
            }
            v => panic!("unexpected violation {v:?}"),
        }
    }

    #[test]
    fn offending_requests_cover_capacity_and_affinity() {
        let infra = infra();
        let mut batch = RequestBatch::new();
        // Request 0: fine. Request 1: overloads server 2.
        batch.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![]);
        batch.push_request(vec![vm_spec(40.0, 1.0, 1.0)], vec![]);
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(2));
        let tracker = LoadTracker::from_assignment(&a, &batch, &infra);
        let report = check_with_tracker(&a, &tracker, &batch, &infra);
        let offending = report.offending_requests(&batch, &a, &tracker, &infra);
        assert_eq!(offending, vec![RequestId(1)]);
    }

    #[test]
    fn display_formats_are_readable() {
        let v = Violation::Capacity {
            server: ServerId(3),
            attr: AttrId(0),
            excess: 1.5,
        };
        assert!(v.to_string().contains("server 3"));
        let u = Violation::Unassigned { vm: VmId(7) };
        assert!(u.to_string().contains("vm 7"));
        let a = Violation::Affinity {
            request: RequestId(2),
            kind: AffinityKind::DifferentServer,
            degree: 2,
        };
        assert!(a.to_string().contains("different-server"));
    }
}
