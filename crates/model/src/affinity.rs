//! The paper's four affinity / anti-affinity relationships (Section III,
//! Eqs. 9–12) and their linearisation (Eqs. 13–14).
//!
//! * **Co-localization in same datacenter** — all resources of the rule in
//!   one datacenter (Eq. 9);
//! * **Co-localization on same server** — all resources on one server
//!   (Eq. 10);
//! * **Separation in different datacenters** — pairwise distinct
//!   datacenters (Eq. 11);
//! * **Separation on different servers** — pairwise distinct servers,
//!   same datacenter allowed (Eq. 12).

use crate::assignment::Assignment;
use crate::infrastructure::Infrastructure;
use crate::request::VmId;

/// The four placement relationships from the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AffinityKind {
    /// All resources of the rule must land in the same datacenter (Eq. 9).
    SameDatacenter,
    /// All resources of the rule must land on the same server (Eq. 10) —
    /// the strongest co-location; implies `SameDatacenter`.
    SameServer,
    /// Every pair of resources must land in different datacenters (Eq. 11).
    DifferentDatacenter,
    /// Every pair of resources must land on different servers (Eq. 12);
    /// the same datacenter is allowed.
    DifferentServer,
}

impl AffinityKind {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AffinityKind::SameDatacenter => "same-datacenter",
            AffinityKind::SameServer => "same-server",
            AffinityKind::DifferentDatacenter => "different-datacenter",
            AffinityKind::DifferentServer => "different-server",
        }
    }

    /// `true` for the two anti-affinity (separation) kinds.
    pub fn is_anti_affinity(self) -> bool {
        matches!(
            self,
            AffinityKind::DifferentDatacenter | AffinityKind::DifferentServer
        )
    }
}

/// One affinity rule over a set of VMs belonging to the same request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffinityRule {
    kind: AffinityKind,
    vms: Vec<VmId>,
}

impl AffinityRule {
    /// Builds a rule; duplicates in `vms` are rejected.
    ///
    /// # Panics
    /// Panics if fewer than two VMs are given (a rule over one VM is
    /// vacuous) or the list has duplicates.
    pub fn new(kind: AffinityKind, vms: Vec<VmId>) -> Self {
        assert!(vms.len() >= 2, "affinity rule needs at least two resources");
        let mut sorted = vms.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            vms.len(),
            "affinity rule has duplicate resources"
        );
        Self { kind, vms }
    }

    /// The rule kind.
    #[inline]
    pub fn kind(&self) -> AffinityKind {
        self.kind
    }

    /// The resources bound by the rule.
    #[inline]
    pub fn vms(&self) -> &[VmId] {
        &self.vms
    }

    /// Checks the rule against an assignment. Unassigned VMs make the rule
    /// unsatisfied (the paper requires full placement, Eq. 5).
    pub fn is_satisfied(&self, assignment: &Assignment, infra: &Infrastructure) -> bool {
        match self.kind {
            AffinityKind::SameServer => {
                let mut first = None;
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => return false,
                        Some(s) => match first {
                            None => first = Some(s),
                            Some(f) if f != s => return false,
                            _ => {}
                        },
                    }
                }
                true
            }
            AffinityKind::SameDatacenter => {
                let mut first = None;
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => return false,
                        Some(s) => {
                            let dc = infra.datacenter_of(s);
                            match first {
                                None => first = Some(dc),
                                Some(f) if f != dc => return false,
                                _ => {}
                            }
                        }
                    }
                }
                true
            }
            AffinityKind::DifferentServer => {
                // Pairwise distinct servers. With ≤ a few dozen VMs per rule
                // a sort beats a HashSet; rules are small by construction.
                let mut servers = Vec::with_capacity(self.vms.len());
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => return false,
                        Some(s) => servers.push(s),
                    }
                }
                servers.sort_unstable();
                servers.windows(2).all(|w| w[0] != w[1])
            }
            AffinityKind::DifferentDatacenter => {
                let mut dcs = Vec::with_capacity(self.vms.len());
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => return false,
                        Some(s) => dcs.push(infra.datacenter_of(s)),
                    }
                }
                dcs.sort_unstable();
                dcs.windows(2).all(|w| w[0] != w[1])
            }
        }
    }

    /// Counts how many *pairs/resources* violate the rule — a graded measure
    /// used by the evolutionary algorithms' constraint-domination and by the
    /// violation figures (Fig. 10). Zero means satisfied.
    pub fn violation_degree(&self, assignment: &Assignment, infra: &Infrastructure) -> usize {
        match self.kind {
            AffinityKind::SameServer => {
                // Resources not on the majority server count as violations.
                let mut counts: Vec<(usize, usize)> = Vec::new(); // (server, count)
                for &k in &self.vms {
                    if let Some(s) = assignment.server_of(k) {
                        if let Some(e) = counts.iter_mut().find(|(sv, _)| *sv == s.index()) {
                            e.1 += 1;
                        } else {
                            counts.push((s.index(), 1));
                        }
                    }
                }
                // Unassigned VMs never join the majority, so they are
                // automatically counted by len() - majority.
                let majority = counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
                self.vms.len() - majority
            }
            AffinityKind::SameDatacenter => {
                let mut counts: Vec<(usize, usize)> = Vec::new();
                let mut unassigned = 0usize;
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => unassigned += 1,
                        Some(s) => {
                            let dc = infra.datacenter_of(s).index();
                            if let Some(e) = counts.iter_mut().find(|(d, _)| *d == dc) {
                                e.1 += 1;
                            } else {
                                counts.push((dc, 1));
                            }
                        }
                    }
                }
                let majority = counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
                if majority == 0 {
                    unassigned
                } else {
                    self.vms.len() - majority
                }
            }
            AffinityKind::DifferentServer => {
                let mut servers: Vec<usize> = Vec::new();
                let mut degree = 0usize;
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => degree += 1,
                        Some(s) => servers.push(s.index()),
                    }
                }
                servers.sort_unstable();
                let mut i = 0;
                while i < servers.len() {
                    let mut j = i + 1;
                    while j < servers.len() && servers[j] == servers[i] {
                        j += 1;
                    }
                    degree += j - i - 1; // every duplicate beyond the first
                    i = j;
                }
                degree
            }
            AffinityKind::DifferentDatacenter => {
                let mut dcs: Vec<usize> = Vec::new();
                let mut degree = 0usize;
                for &k in &self.vms {
                    match assignment.server_of(k) {
                        None => degree += 1,
                        Some(s) => dcs.push(infra.datacenter_of(s).index()),
                    }
                }
                dcs.sort_unstable();
                let mut i = 0;
                while i < dcs.len() {
                    let mut j = i + 1;
                    while j < dcs.len() && dcs[j] == dcs[i] {
                        j += 1;
                    }
                    degree += j - i - 1;
                    i = j;
                }
                degree
            }
        }
    }
}

/// A linear(ised) view of an affinity rule, mirroring the paper's
/// linearisation of the non-linear product constraints (Eqs. 13–14).
///
/// The CP solver consumes this form; the documentation value is that it
/// makes the integer-programming shape of each rule explicit:
///
/// * `AllEqual(vars)` — the auxiliary-variable trick of Eq. 13/14 reduces
///   "product of indicator sums equals one" to "all placement variables
///   take the same value";
/// * `AllDifferent(vars)` — separation rules are `alldifferent` over the
///   server (or datacenter) variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearizedRule {
    /// All the listed VMs' *server* variables must be equal.
    AllEqualServer(Vec<VmId>),
    /// All the listed VMs' *datacenter* variables must be equal.
    AllEqualDatacenter(Vec<VmId>),
    /// All the listed VMs' *server* variables must be pairwise different.
    AllDifferentServer(Vec<VmId>),
    /// All the listed VMs' *datacenter* variables must be pairwise different.
    AllDifferentDatacenter(Vec<VmId>),
}

impl AffinityRule {
    /// Produces the linearised (Eqs. 13–14) form of the rule.
    pub fn linearize(&self) -> LinearizedRule {
        match self.kind {
            AffinityKind::SameServer => LinearizedRule::AllEqualServer(self.vms.clone()),
            AffinityKind::SameDatacenter => LinearizedRule::AllEqualDatacenter(self.vms.clone()),
            AffinityKind::DifferentServer => LinearizedRule::AllDifferentServer(self.vms.clone()),
            AffinityKind::DifferentDatacenter => {
                LinearizedRule::AllDifferentDatacenter(self.vms.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerId, ServerProfile};

    fn infra_2dc_2srv() -> Infrastructure {
        let p = ServerProfile::commodity(3);
        Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), p.build_many(2)),
                ("dc1".into(), p.build_many(2)),
            ],
        )
    }

    fn assign(pairs: &[(usize, usize)], n: usize) -> Assignment {
        let mut a = Assignment::unassigned(n);
        for &(k, j) in pairs {
            a.assign(VmId(k), ServerId(j));
        }
        a
    }

    #[test]
    fn same_server_satisfied_only_when_colocated() {
        let infra = infra_2dc_2srv();
        let rule = AffinityRule::new(AffinityKind::SameServer, vec![VmId(0), VmId(1)]);
        assert!(rule.is_satisfied(&assign(&[(0, 1), (1, 1)], 2), &infra));
        assert!(!rule.is_satisfied(&assign(&[(0, 0), (1, 1)], 2), &infra));
        assert!(!rule.is_satisfied(&assign(&[(0, 0)], 2), &infra)); // unassigned
    }

    #[test]
    fn same_datacenter_allows_different_servers() {
        let infra = infra_2dc_2srv();
        let rule = AffinityRule::new(AffinityKind::SameDatacenter, vec![VmId(0), VmId(1)]);
        assert!(rule.is_satisfied(&assign(&[(0, 0), (1, 1)], 2), &infra)); // both dc0
        assert!(!rule.is_satisfied(&assign(&[(0, 0), (1, 2)], 2), &infra)); // dc0 vs dc1
    }

    #[test]
    fn different_server_rejects_colocation() {
        let infra = infra_2dc_2srv();
        let rule = AffinityRule::new(
            AffinityKind::DifferentServer,
            vec![VmId(0), VmId(1), VmId(2)],
        );
        assert!(rule.is_satisfied(&assign(&[(0, 0), (1, 1), (2, 2)], 3), &infra));
        assert!(!rule.is_satisfied(&assign(&[(0, 0), (1, 0), (2, 2)], 3), &infra));
    }

    #[test]
    fn different_datacenter_requires_distinct_dcs() {
        let infra = infra_2dc_2srv();
        let rule = AffinityRule::new(AffinityKind::DifferentDatacenter, vec![VmId(0), VmId(1)]);
        assert!(rule.is_satisfied(&assign(&[(0, 0), (1, 2)], 2), &infra));
        assert!(!rule.is_satisfied(&assign(&[(0, 0), (1, 1)], 2), &infra)); // both dc0
    }

    #[test]
    fn violation_degree_zero_iff_satisfied() {
        let infra = infra_2dc_2srv();
        for kind in [
            AffinityKind::SameServer,
            AffinityKind::SameDatacenter,
            AffinityKind::DifferentServer,
            AffinityKind::DifferentDatacenter,
        ] {
            let rule = AffinityRule::new(kind, vec![VmId(0), VmId(1)]);
            for placements in [
                vec![(0, 0), (1, 0)],
                vec![(0, 0), (1, 1)],
                vec![(0, 0), (1, 2)],
                vec![(0, 1), (1, 3)],
            ] {
                let a = assign(&placements, 2);
                assert_eq!(
                    rule.violation_degree(&a, &infra) == 0,
                    rule.is_satisfied(&a, &infra),
                    "kind {kind:?} placements {placements:?}"
                );
            }
        }
    }

    #[test]
    fn violation_degree_counts_offenders() {
        let infra = infra_2dc_2srv();
        // 3 VMs that must share a server: two on s0, one on s1 → 1 offender.
        let rule = AffinityRule::new(AffinityKind::SameServer, vec![VmId(0), VmId(1), VmId(2)]);
        assert_eq!(
            rule.violation_degree(&assign(&[(0, 0), (1, 0), (2, 1)], 3), &infra),
            1
        );
        // 3 VMs that must be separated: all on s0 → 2 duplicates.
        let sep = AffinityRule::new(
            AffinityKind::DifferentServer,
            vec![VmId(0), VmId(1), VmId(2)],
        );
        assert_eq!(
            sep.violation_degree(&assign(&[(0, 0), (1, 0), (2, 0)], 3), &infra),
            2
        );
    }

    #[test]
    fn unassigned_vms_count_as_violations() {
        let infra = infra_2dc_2srv();
        let rule = AffinityRule::new(AffinityKind::DifferentServer, vec![VmId(0), VmId(1)]);
        let a = assign(&[(0, 0)], 2);
        assert_eq!(rule.violation_degree(&a, &infra), 1);
    }

    #[test]
    fn linearize_maps_kinds() {
        let vms = vec![VmId(0), VmId(1)];
        assert_eq!(
            AffinityRule::new(AffinityKind::SameServer, vms.clone()).linearize(),
            LinearizedRule::AllEqualServer(vms.clone())
        );
        assert_eq!(
            AffinityRule::new(AffinityKind::DifferentDatacenter, vms.clone()).linearize(),
            LinearizedRule::AllDifferentDatacenter(vms)
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vm_rule_rejected() {
        let _ = AffinityRule::new(AffinityKind::SameServer, vec![VmId(0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_vm_rule_rejected() {
        let _ = AffinityRule::new(AffinityKind::SameServer, vec![VmId(0), VmId(0)]);
    }
}
