//! Incremental (delta) evaluation of single-VM relocations.
//!
//! Every local-search consumer in the workspace — the tabu allocator, the
//! tabu repair, the CP repair and the evolutionary adapters — ultimately
//! scores assignments through [`check`](crate::constraints::check) and
//! [`evaluate`](crate::cost::evaluate), each of which rebuilds a
//! [`LoadTracker`] and re-walks all `n` VMs, all `m × h` capacity cells and
//! every affinity rule: O(n·h + m·h + rules) per candidate, when a
//! relocation only touches one VM, at most two servers, and the rules that
//! name that VM.
//!
//! [`DeltaEvaluator`] owns an [`Assignment`] plus all derived state the
//! score depends on, keeps that state consistent under single-VM moves in
//! O(occupancy·h + rules(k)), and produces scores by *canonical
//! resummation* of cached per-unit terms — replaying the exact left-to-right
//! floating-point summation order of the full recompute, so the delta score
//! equals the from-scratch score **bit for bit** (pinned by the proptest
//! differential layer in `tests/delta_props.rs` and the workspace-level
//! `tests/delta_differential.rs`).
//!
//! Why resummation instead of running `+=`/`-=` sums: floating-point
//! addition is not associative, so a maintained running total drifts away
//! (in the last ulps) from the sum the oracle computes, and "score equality"
//! would degrade into an epsilon comparison that masks real bugs. The
//! per-unit terms (a server's usage row, a VM's downtime penalty, a rule's
//! degree) *are* maintained incrementally — recomputed only for the touched
//! servers/VM/rules — while the final score sums those cached terms in the
//! oracle's order. That keeps per-move cost at O(touched) model work plus an
//! O(n + m) cached-f64 sweep whose cells cost one load and one add each.
//!
//! The *evaluation work* counter ([`DeltaEvaluator::work`]) counts the
//! heavy model-cell operations — tracker cell writes, capacity-cell scans,
//! QoS curve evaluations, per-VM cost-term computations and rule-member
//! visits — mirroring how PR 3's propagation counter measures solver work.
//! [`DeltaEvaluator::full_eval_work`] is the analytic cost of one
//! tracker-rebuilding full evaluation on the same state, the denominator of
//! the ≥5× regression pin in `tests/delta_eval_regression.rs`.

use crate::assignment::Assignment;
use crate::attr::AttrId;
use crate::constraints::capacity_degree_term;
use crate::cost::{self, ObjectiveVector};
use crate::infrastructure::ServerId;
use crate::load::LoadTracker;
use crate::problem::AllocationProblem;
use crate::qos::worst_qos;
use crate::request::{RequestId, VmId};

/// The score of an assignment as local search ranks it: constraint
/// violation degree first, then the Eq. 15 objective vector.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MoveScore {
    /// Graded constraint-violation degree ([`ViolationReport::degree`]);
    /// `0.0` iff the assignment is feasible.
    ///
    /// [`ViolationReport::degree`]: crate::constraints::ViolationReport::degree
    pub violation: f64,
    /// The three monetised objectives of Eq. 15.
    pub objectives: ObjectiveVector,
}

impl MoveScore {
    /// Equal-weight Eq. 15 aggregate.
    pub fn total_cost(&self) -> f64 {
        self.objectives.total()
    }

    /// `true` when no hard constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violation == 0.0
    }
}

/// Locates one affinity rule inside the batch: `rules[rule]` of
/// `request(request)`.
#[derive(Clone, Copy, Debug)]
struct RuleRef {
    request: usize,
    rule: usize,
}

/// Incrementally-maintained evaluation state for one [`AllocationProblem`].
///
/// See the [module docs](self) for the design; in short:
///
/// * [`peek_relocate`](Self::peek_relocate) scores "move VM `k` to server
///   `j`" without changing the observable assignment;
/// * [`apply`](Self::apply) / [`unassign_vm`](Self::unassign_vm) commit a
///   move and push it onto the undo stack; [`undo`](Self::undo) reverts the
///   most recent one;
/// * [`rebuild`](Self::rebuild) constructs a fresh evaluator from the
///   current assignment — the slow-path oracle the differential tests
///   compare against;
/// * [`score`](Self::score) is bit-identical to
///   `problem.check(a).degree()` + `problem.evaluate(a)`.
pub struct DeltaEvaluator<'p> {
    problem: &'p AllocationProblem,
    /// All affinity rules of the batch, flattened in request order —
    /// the order [`check`](crate::constraints::check) visits them.
    rules: Vec<RuleRef>,
    /// VM → indices into `rules` naming that VM. Built once per evaluator.
    vm_rules: Vec<Vec<u32>>,
    /// Σ rule member counts — the affinity share of one full check.
    total_rule_vms: u64,

    assignment: Assignment,
    tracker: LoadTracker,
    /// VMs hosted per server, ascending `VmId` — the order
    /// [`LoadTracker::from_assignment`] accumulates in, which is what makes
    /// [`LoadTracker::recompute_server`] reproduce its rows bit for bit.
    per_server: Vec<Vec<VmId>>,
    /// Per-server capacity-overload entries (attr ascending), maintained by
    /// [`refresh_server`](Self::refresh_server); buffers are reused.
    overloads: Vec<Vec<(AttrId, f64)>>,
    /// Worst QoS per server (meaningless for empty servers, never read).
    qos: Vec<f64>,
    /// Cached Eq. 23 penalty per VM; `0.0` when unassigned or within
    /// guarantee.
    penalty: Vec<f64>,
    /// Whether each VM counts as migrated relative to `problem.previous()`.
    moved: Vec<bool>,
    /// Cached violation degree per rule (same order as `rules`).
    rule_degree: Vec<usize>,
    /// Number of overloaded servers / broken rules, for O(1) feasibility.
    overloaded_servers: usize,
    broken_rules: usize,
    unassigned: usize,

    /// Undo stack of `(vm, server it was on before the move)`.
    undo: Vec<(VmId, Option<ServerId>)>,
    /// Heavy model-cell operations performed so far (see module docs).
    work: u64,
}

impl<'p> DeltaEvaluator<'p> {
    /// Builds an evaluator owning `assignment`.
    ///
    /// # Panics
    /// Panics when `assignment` does not cover exactly `problem.n()` VMs.
    pub fn new(problem: &'p AllocationProblem, assignment: Assignment) -> Self {
        let (_, m, n, _) = problem.dims();
        let mut rules = Vec::new();
        let mut vm_rules = vec![Vec::new(); n];
        let mut total_rule_vms = 0u64;
        for req in problem.batch().requests() {
            for (ri, rule) in req.rules.iter().enumerate() {
                let idx = rules.len() as u32;
                for &k in rule.vms() {
                    vm_rules[k.index()].push(idx);
                }
                total_rule_vms += rule.vms().len() as u64;
                rules.push(RuleRef {
                    request: req.id.index(),
                    rule: ri,
                });
            }
        }
        let n_rules = rules.len();
        let mut ev = Self {
            problem,
            rules,
            vm_rules,
            total_rule_vms,
            assignment: Assignment::unassigned(0),
            tracker: LoadTracker::new(m, problem.h()),
            per_server: vec![Vec::new(); m],
            overloads: vec![Vec::new(); m],
            qos: vec![0.0; m],
            penalty: vec![0.0; n],
            moved: vec![false; n],
            rule_degree: vec![0; n_rules],
            overloaded_servers: 0,
            broken_rules: 0,
            unassigned: 0,
            undo: Vec::new(),
            work: 0,
        };
        ev.reset(assignment);
        ev
    }

    /// Replaces the owned assignment and rebuilds all derived state,
    /// reusing every buffer — the zero-allocation reset path the MOEA
    /// evaluator pool relies on. Clears the undo history.
    ///
    /// # Panics
    /// Panics when `assignment` does not cover exactly `problem.n()` VMs.
    pub fn reset(&mut self, assignment: Assignment) {
        assert_eq!(
            assignment.len(),
            self.problem.n(),
            "assignment covers {} VMs, problem has {}",
            assignment.len(),
            self.problem.n()
        );
        self.assignment = assignment;
        self.undo.clear();
        for list in &mut self.per_server {
            list.clear();
        }
        // iter_assigned yields ascending VmId, so each list lands sorted.
        for (k, j) in self.assignment.iter_assigned() {
            self.per_server[j.index()].push(k);
        }
        self.unassigned = self.assignment.len() - self.assignment.assigned_count();
        self.penalty.fill(0.0);
        self.overloaded_servers = 0;
        self.broken_rules = 0;
        // refresh_server adjusts the overload count relative to the stored
        // buffer, so clear the buffers to match the zeroed count first.
        for buf in &mut self.overloads {
            buf.clear();
        }
        self.rule_degree.fill(0);
        for j in 0..self.problem.m() {
            self.refresh_server(ServerId(j));
        }
        for k in 0..self.problem.n() {
            self.refresh_migration(VmId(k));
        }
        for i in 0..self.rules.len() {
            self.refresh_rule(i);
        }
    }

    /// The problem this evaluator scores against.
    #[inline]
    pub fn problem(&self) -> &'p AllocationProblem {
        self.problem
    }

    /// The current assignment.
    #[inline]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The maintained load tracker (always consistent with
    /// [`assignment`](Self::assignment)).
    #[inline]
    pub fn tracker(&self) -> &LoadTracker {
        &self.tracker
    }

    /// Consumes the evaluator, returning the owned assignment.
    pub fn into_assignment(self) -> Assignment {
        self.assignment
    }

    /// Heavy model-cell operations performed so far (module docs define the
    /// unit). Monotone; compare before/after a search to measure its
    /// evaluation work.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Analytic model-cell cost of ONE full (tracker-rebuilding)
    /// check + evaluate on the current state, in the same unit as
    /// [`work`](Self::work): tracker build (`assigned·h`) + capacity scan
    /// (`m·h`) + affinity degrees (Σ rule members) + unassigned scan (`n`)
    /// + usage/opex sweep (`m`) + downtime (`active·h` QoS evaluations +
    ///   `assigned` per-VM terms) + migration scan (`n`, when a previous
    ///   allocation exists).
    pub fn full_eval_work(&self) -> u64 {
        let (_, m, n, h) = self.problem.dims();
        let assigned = n - self.unassigned;
        let active = self.tracker.active_servers();
        let mut w = (assigned * h) as u64;
        w += (m * h) as u64;
        w += self.total_rule_vms;
        w += n as u64;
        w += m as u64;
        w += (active * h + assigned) as u64;
        if self.problem.previous().is_some() {
            w += n as u64;
        }
        w
    }

    /// O(1) feasibility of the current assignment.
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.unassigned == 0 && self.overloaded_servers == 0 && self.broken_rules == 0
    }

    /// `true` when server `j` currently violates the capacity constraint.
    #[inline]
    pub fn server_overloaded(&self, j: ServerId) -> bool {
        !self.overloads[j.index()].is_empty()
    }

    /// VMs currently hosted on server `j`, ascending `VmId` — the
    /// maintained occupant list candidate-generation strategies read
    /// instead of re-deriving occupancy from the assignment.
    #[inline]
    pub fn occupants(&self, j: ServerId) -> &[VmId] {
        &self.per_server[j.index()]
    }

    /// Number of VMs hosted on server `j` (O(1) from the occupant list).
    #[inline]
    pub fn occupancy(&self, j: ServerId) -> usize {
        self.per_server[j.index()].len()
    }

    /// Servers currently violating the capacity constraint, ascending id
    /// — read off the maintained overload buffers without a tracker
    /// rebuild.
    pub fn overloaded_server_ids(&self) -> Vec<ServerId> {
        self.overloads
            .iter()
            .enumerate()
            .filter_map(|(j, per)| (!per.is_empty()).then_some(ServerId(j)))
            .collect()
    }

    /// `true` when VM `k` is named by at least one currently-broken rule.
    pub fn vm_has_broken_rule(&self, k: VmId) -> bool {
        self.vm_rules[k.index()]
            .iter()
            .any(|&i| self.rule_degree[i as usize] > 0)
    }

    /// VMs implicated in any violation — unplaced, hosted on an overloaded
    /// server, or party to a broken rule. Same set as
    /// `tabu::faulty_vms`, computed from maintained state without a
    /// tracker rebuild.
    pub fn faulty_vms(&self) -> Vec<VmId> {
        let n = self.problem.n();
        let mut flag = vec![false; n];
        for (k, f) in flag.iter_mut().enumerate() {
            *f = match self.assignment.server_of(VmId(k)) {
                None => true,
                Some(j) => self.server_overloaded(j),
            };
        }
        for (i, r) in self.rules.iter().enumerate() {
            if self.rule_degree[i] > 0 {
                let req = &self.problem.batch().requests()[r.request];
                for &k in req.rules[r.rule].vms() {
                    flag[k.index()] = true;
                }
            }
        }
        flag.iter()
            .enumerate()
            .filter_map(|(k, &f)| f.then_some(VmId(k)))
            .collect()
    }

    /// Scores the current assignment by canonical resummation of the
    /// maintained per-unit terms — bit-identical to
    /// `problem.check(a).degree()` and `problem.evaluate(a)` (module docs
    /// explain the order replay).
    pub fn score(&self) -> MoveScore {
        let infra = self.problem.infra();
        let batch = self.problem.batch();

        // Violation degree, in ViolationReport order: unassigned VMs
        // (1.0 each — exact, sum of u ones is u), then capacity entries
        // (server asc, attr asc), then affinity degrees (request order).
        // `Iterator::sum::<f64>()` folds from -0.0, so an empty report's
        // degree is -0.0; every individual term is ≥ 1.0, which makes the
        // nonempty left-to-right sums below bit-identical to the fold.
        let mut violation = self.unassigned as f64;
        let mut any_violation = self.unassigned > 0;
        for per in &self.overloads {
            for &(_, excess) in per {
                violation += capacity_degree_term(excess);
                any_violation = true;
            }
        }
        for &d in &self.rule_degree {
            if d > 0 {
                violation += d as f64;
                any_violation = true;
            }
        }
        if !any_violation {
            violation = -0.0;
        }

        // Eq. 22 is an O(m) sweep of maintained hosted counts; run the
        // real thing rather than caching per-server terms.
        let usage_opex = cost::usage_opex_cost(&self.tracker, infra);

        // Eq. 23: replay iter_assigned order over cached penalties. The
        // full path only adds terms for assigned VMs; skipping exact-zero
        // penalties is bit-safe because the accumulator is never -0.0.
        let mut downtime = 0.0;
        for (k, _) in self.assignment.iter_assigned() {
            let p = self.penalty[k.index()];
            if p != 0.0 {
                downtime += p;
            }
        }

        // Eq. 26: replay migrations_from order (ascending VmId) over the
        // maintained moved set. migration_cost() is a .sum() — it folds
        // from -0.0 and adds every moved VM's cost (zeros included), so
        // mirror that exactly; without a previous allocation the full
        // path substitutes a literal 0.0 instead.
        let mut migration = 0.0;
        if self.problem.previous().is_some() {
            migration = -0.0;
            for (k, moved) in self.moved.iter().enumerate() {
                if *moved {
                    migration += batch.vm(VmId(k)).migration_cost;
                }
            }
        }

        MoveScore {
            violation,
            objectives: ObjectiveVector {
                usage_opex,
                downtime,
                migration,
            },
        }
    }

    /// Scores "relocate VM `k` to server `j`" without observably changing
    /// the evaluator: the move is applied, scored, and reverted.
    /// O(occupancy(from,j)·h + rules(k)) model work plus the cached-term
    /// resummation.
    pub fn peek_relocate(&mut self, k: VmId, j: ServerId) -> MoveScore {
        let from = self.assignment.server_of(k);
        self.relocate(k, Some(j));
        let score = self.score();
        self.relocate(k, from);
        score
    }

    /// As [`peek_relocate`](Self::peek_relocate) but for evicting `k`.
    pub fn peek_unassign(&mut self, k: VmId) -> MoveScore {
        let from = self.assignment.server_of(k);
        self.relocate(k, None);
        let score = self.score();
        self.relocate(k, from);
        score
    }

    /// Commits "relocate VM `k` to server `j`" and records it for
    /// [`undo`](Self::undo).
    pub fn apply(&mut self, k: VmId, j: ServerId) {
        let from = self.assignment.server_of(k);
        self.undo.push((k, from));
        self.relocate(k, Some(j));
    }

    /// Commits "evict VM `k`" and records it for [`undo`](Self::undo).
    pub fn unassign_vm(&mut self, k: VmId) {
        let from = self.assignment.server_of(k);
        self.undo.push((k, from));
        self.relocate(k, None);
    }

    /// Reverts the most recent committed move. Returns `false` when the
    /// history is empty.
    pub fn undo(&mut self) -> bool {
        match self.undo.pop() {
            Some((k, to)) => {
                self.relocate(k, to);
                true
            }
            None => false,
        }
    }

    /// Number of committed moves available to [`undo`](Self::undo).
    #[inline]
    pub fn history_len(&self) -> usize {
        self.undo.len()
    }

    /// Forgets the undo history (the state is kept).
    pub fn clear_history(&mut self) {
        self.undo.clear();
    }

    /// Slow-path oracle: a fresh evaluator built from the current
    /// assignment. The differential tests assert `self` and the rebuild
    /// agree on every maintained cell and on [`score`](Self::score).
    pub fn rebuild(&self) -> DeltaEvaluator<'p> {
        DeltaEvaluator::new(self.problem, self.assignment.clone())
    }

    /// Moves VM `k` to `to` (`None` = evict) and refreshes exactly the
    /// state the move touches.
    fn relocate(&mut self, k: VmId, to: Option<ServerId>) {
        let from = self.assignment.server_of(k);
        if from == to {
            return;
        }
        match to {
            Some(j) => self.assignment.assign(k, j),
            None => self.assignment.unassign(k),
        }
        match from {
            Some(a) => {
                let list = &mut self.per_server[a.index()];
                let pos = list
                    .binary_search(&k)
                    .expect("vm must be on its server's list");
                list.remove(pos);
            }
            None => self.unassigned -= 1,
        }
        match to {
            Some(b) => {
                let list = &mut self.per_server[b.index()];
                let pos = list
                    .binary_search(&k)
                    .expect_err("vm cannot already be on the target list");
                list.insert(pos, k);
            }
            None => {
                self.unassigned += 1;
                self.penalty[k.index()] = 0.0;
            }
        }
        if let Some(a) = from {
            self.refresh_server(a);
        }
        if let Some(b) = to {
            self.refresh_server(b);
        }
        self.refresh_migration(k);
        for t in 0..self.vm_rules[k.index()].len() {
            let i = self.vm_rules[k.index()][t] as usize;
            self.refresh_rule(i);
        }
    }

    /// Recomputes every maintained fact about server `j` from its (sorted)
    /// occupant list: tracker row, overload entries, worst QoS, and the
    /// downtime penalty of each hosted VM. O((occupancy + 2)·h + occupancy).
    fn refresh_server(&mut self, j: ServerId) {
        let batch = self.problem.batch();
        let infra = self.problem.infra();
        let vms = &self.per_server[j.index()];
        self.tracker.recompute_server(j, vms, batch);
        let was_overloaded = !self.overloads[j.index()].is_empty();
        self.tracker
            .overloads_into(j, infra, &mut self.overloads[j.index()]);
        let is_overloaded = !self.overloads[j.index()].is_empty();
        match (was_overloaded, is_overloaded) {
            (false, true) => self.overloaded_servers += 1,
            (true, false) => self.overloaded_servers -= 1,
            _ => {}
        }
        let q = worst_qos(&self.tracker, j, infra);
        self.qos[j.index()] = q;
        for &k in vms {
            self.penalty[k.index()] = cost::downtime_penalty(batch.vm(k), q);
        }
        let h = infra.attr_count();
        self.work += ((vms.len() + 2) * h + vms.len()) as u64;
    }

    /// Refreshes VM `k`'s membership in the Eq. 26 migration set.
    fn refresh_migration(&mut self, k: VmId) {
        if let Some(prev) = self.problem.previous() {
            self.moved[k.index()] = match (prev.server_of(k), self.assignment.server_of(k)) {
                (Some(b), Some(n)) => b != n,
                (Some(_), None) => true, // eviction counts as a move
                _ => false,
            };
            self.work += 1;
        }
    }

    /// Recomputes rule `i`'s violation degree. O(rule members).
    fn refresh_rule(&mut self, i: usize) {
        let r = self.rules[i];
        let req = &self.problem.batch().requests()[r.request];
        let rule = &req.rules[r.rule];
        let degree = rule.violation_degree(&self.assignment, self.problem.infra());
        let was_broken = self.rule_degree[i] > 0;
        let is_broken = degree > 0;
        match (was_broken, is_broken) {
            (false, true) => self.broken_rules += 1,
            (true, false) => self.broken_rules -= 1,
            _ => {}
        }
        self.rule_degree[i] = degree;
        self.work += rule.vms().len() as u64;
    }

    /// Requests having at least one faulty VM, in id order — the set the
    /// CP repair re-solves.
    pub fn offending_requests(&self) -> Vec<RequestId> {
        let batch = self.problem.batch();
        let mut flags = vec![false; batch.request_count()];
        for k in self.faulty_vms() {
            flags[batch.request_of(k).index()] = true;
        }
        flags
            .iter()
            .enumerate()
            .filter_map(|(r, &f)| f.then_some(RequestId(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::{AffinityKind, AffinityRule};
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};
    use crate::request::{vm_spec, RequestBatch};

    /// Two datacenters × two commodity servers, six VMs in three requests
    /// with one affinity and one anti-affinity rule, plus a previous
    /// allocation so all three objective terms are live.
    fn problem() -> AllocationProblem {
        let p = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), p.build_many(2)),
                ("dc1".into(), p.build_many(2)),
            ],
        );
        let mut batch = RequestBatch::new();
        let mut hot = vm_spec(20.0, 4096.0, 100.0);
        hot.qos_guarantee = 0.98;
        hot.downtime_cost = 7.0;
        hot.migration_cost = 3.0;
        batch.push_request(vec![hot.clone(), hot], vec![]);
        batch.push_request(
            vec![vm_spec(4.0, 2048.0, 50.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(2), VmId(3)],
            )],
        );
        batch.push_request(
            vec![vm_spec(2.0, 1024.0, 20.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(4), VmId(5)],
            )],
        );
        let mut previous = Assignment::unassigned(6);
        previous.assign(VmId(0), ServerId(0));
        previous.assign(VmId(1), ServerId(1));
        previous.assign(VmId(4), ServerId(2));
        AllocationProblem::new(infra, batch, Some(previous))
    }

    fn full_score(p: &AllocationProblem, a: &Assignment) -> MoveScore {
        MoveScore {
            violation: p.check(a).degree(),
            objectives: p.evaluate(a),
        }
    }

    fn assert_scores_bit_equal(d: &MoveScore, f: &MoveScore) {
        assert_eq!(d.violation.to_bits(), f.violation.to_bits(), "violation");
        for (i, (x, y)) in d
            .objectives
            .as_array()
            .iter()
            .zip(f.objectives.as_array())
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "objective component {i}");
        }
    }

    #[test]
    fn score_matches_full_recompute_bitwise() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0)); // overloads cpu, degrades qos
        a.assign(VmId(2), ServerId(1));
        a.assign(VmId(3), ServerId(2)); // breaks same-server rule
        a.assign(VmId(4), ServerId(3)); // migrated from server 2
                                        // VmId(5) unassigned
        let ev = DeltaEvaluator::new(&p, a.clone());
        assert_scores_bit_equal(&ev.score(), &full_score(&p, &a));
        assert!(!ev.is_feasible());
    }

    #[test]
    fn peek_does_not_disturb_state_and_matches_oracle() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        for k in 0..6 {
            a.assign(VmId(k), ServerId(k % 4));
        }
        let mut ev = DeltaEvaluator::new(&p, a.clone());
        let before = ev.score();
        for k in 0..6 {
            for j in 0..4 {
                let peeked = ev.peek_relocate(VmId(k), ServerId(j));
                let mut moved = a.clone();
                moved.assign(VmId(k), ServerId(j));
                assert_scores_bit_equal(&peeked, &full_score(&p, &moved));
            }
        }
        assert_scores_bit_equal(&ev.score(), &before);
        assert_eq!(ev.assignment(), &a);
    }

    #[test]
    fn apply_undo_restores_bitwise_state() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        for k in 0..6 {
            a.assign(VmId(k), ServerId(k % 4));
        }
        let mut ev = DeltaEvaluator::new(&p, a.clone());
        let before = ev.score();
        ev.apply(VmId(0), ServerId(3));
        ev.unassign_vm(VmId(4));
        ev.apply(VmId(2), ServerId(0));
        assert_eq!(ev.history_len(), 3);
        assert_scores_bit_equal(&ev.score(), &full_score(&p, ev.assignment()));
        while ev.undo() {}
        assert_eq!(ev.assignment(), &a);
        assert_scores_bit_equal(&ev.score(), &before);
    }

    #[test]
    fn maintained_state_matches_rebuild_after_moves() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        for k in 0..6 {
            a.assign(VmId(k), ServerId(3 - k % 4));
        }
        let mut ev = DeltaEvaluator::new(&p, a);
        ev.apply(VmId(1), ServerId(2));
        ev.unassign_vm(VmId(3));
        ev.apply(VmId(5), ServerId(0));
        ev.apply(VmId(1), ServerId(0));
        let fresh = ev.rebuild();
        for j in 0..p.m() {
            let j = ServerId(j);
            assert_eq!(
                ev.tracker().used_row(j),
                fresh.tracker().used_row(j),
                "tracker row {j:?}"
            );
            assert_eq!(ev.tracker().hosted(j), fresh.tracker().hosted(j));
        }
        assert_eq!(ev.unassigned, fresh.unassigned);
        assert_eq!(ev.rule_degree, fresh.rule_degree);
        assert_eq!(ev.moved, fresh.moved);
        assert_eq!(ev.overloaded_servers, fresh.overloaded_servers);
        assert_eq!(ev.broken_rules, fresh.broken_rules);
        for k in 0..p.n() {
            assert_eq!(
                ev.penalty[k].to_bits(),
                fresh.penalty[k].to_bits(),
                "penalty of vm {k}"
            );
        }
        assert_scores_bit_equal(&ev.score(), &fresh.score());
    }

    #[test]
    fn faulty_vms_matches_feasibility_facts() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0)); // cpu overload on server 0
        a.assign(VmId(2), ServerId(1));
        a.assign(VmId(3), ServerId(2)); // same-server rule broken
        a.assign(VmId(4), ServerId(3));
        // VmId(5): unassigned AND party to the different-server rule
        let ev = DeltaEvaluator::new(&p, a);
        let faulty = ev.faulty_vms();
        assert_eq!(
            faulty,
            vec![VmId(0), VmId(1), VmId(2), VmId(3), VmId(4), VmId(5)]
        );
        // (VM 4 is faulty because rule {4,5} is broken by 5's absence.)
        assert!(ev.server_overloaded(ServerId(0)));
        assert!(!ev.server_overloaded(ServerId(1)));
        assert!(ev.vm_has_broken_rule(VmId(2)));
        assert!(!ev.vm_has_broken_rule(VmId(0)));
        assert_eq!(
            ev.offending_requests(),
            vec![RequestId(0), RequestId(1), RequestId(2)]
        );
    }

    #[test]
    fn feasible_state_scores_zero_violation() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(1));
        a.assign(VmId(2), ServerId(2));
        a.assign(VmId(3), ServerId(2));
        a.assign(VmId(4), ServerId(2));
        a.assign(VmId(5), ServerId(3));
        let ev = DeltaEvaluator::new(&p, a);
        assert!(ev.is_feasible());
        let s = ev.score();
        assert_eq!(s.violation, 0.0);
        assert!(s.is_feasible());
        assert!(s.total_cost() > 0.0);
    }

    #[test]
    fn work_counter_grows_slower_than_full_recompute() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        for k in 0..6 {
            a.assign(VmId(k), ServerId(k % 4));
        }
        let mut ev = DeltaEvaluator::new(&p, a);
        let w0 = ev.work();
        let _ = ev.peek_relocate(VmId(0), ServerId(3));
        let per_peek = ev.work() - w0;
        assert!(per_peek > 0, "peek must be accounted");
        assert!(
            per_peek < ev.full_eval_work(),
            "one peek ({per_peek}) must cost less than one full eval ({})",
            ev.full_eval_work()
        );
    }

    #[test]
    fn reset_reuses_buffers_and_matches_fresh_build() {
        let p = problem();
        let mut a1 = Assignment::unassigned(6);
        for k in 0..6 {
            a1.assign(VmId(k), ServerId(k % 4));
        }
        let mut a2 = Assignment::unassigned(6);
        a2.assign(VmId(0), ServerId(1));
        a2.assign(VmId(3), ServerId(1));
        let mut ev = DeltaEvaluator::new(&p, a1);
        ev.apply(VmId(2), ServerId(3));
        ev.reset(a2.clone());
        assert_eq!(ev.history_len(), 0);
        let fresh = DeltaEvaluator::new(&p, a2);
        assert_scores_bit_equal(&ev.score(), &fresh.score());
        assert_eq!(ev.unassigned, fresh.unassigned);
        assert_eq!(ev.overloaded_servers, fresh.overloaded_servers);
        assert_eq!(ev.broken_rules, fresh.broken_rules);
    }

    #[test]
    fn noop_relocate_to_same_server_is_free_and_stable() {
        let p = problem();
        let mut a = Assignment::unassigned(6);
        for k in 0..6 {
            a.assign(VmId(k), ServerId(k % 4));
        }
        let mut ev = DeltaEvaluator::new(&p, a.clone());
        let before = ev.score();
        ev.apply(VmId(1), ServerId(1)); // already there
        assert_scores_bit_equal(&ev.score(), &before);
        assert!(ev.undo());
        assert_eq!(ev.assignment(), &a);
    }
}
