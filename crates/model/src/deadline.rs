//! Wall-clock deadlines for anytime solvers.
//!
//! A [`Deadline`] is a copyable "solve until" point shared by every
//! deadline-aware component: the parallel tabu engine checks it at
//! iteration boundaries, the CP admission loop caps each per-request
//! budget by the remaining time, and the racing portfolio hands one
//! deadline to every member it races. The unbounded case is a
//! first-class value ([`Deadline::never`]) so call sites never branch on
//! an `Option` — an expired check against `never` is simply `false`.
//!
//! Semantics contract (DESIGN.md §13): a deadline bounds *when a solver
//! may start more work*, not how long in-flight work may run. Solvers
//! check at natural cut points (a search iteration, a CP request, a
//! portfolio member) and return their best incumbent on expiry, so the
//! granularity of the overshoot is one unit of the solver's inner work.

use std::time::{Duration, Instant};

/// A point in wall-clock time after which an anytime solver must wrap
/// up and return its incumbent. `Copy`, so it threads freely through
/// configs and across scoped threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// The unbounded deadline: never expires.
    pub const fn never() -> Self {
        Deadline(None)
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline(Some(Instant::now() + budget))
    }

    /// A deadline at an explicit instant.
    pub const fn at(t: Instant) -> Self {
        Deadline(Some(t))
    }

    /// `true` when bounded (not [`never`](Self::never)).
    pub const fn is_bounded(&self) -> bool {
        self.0.is_some()
    }

    /// `true` once the wall clock has passed the deadline. Always
    /// `false` for an unbounded deadline.
    pub fn expired(&self) -> bool {
        match self.0 {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Time left before expiry: `None` when unbounded, `Some(ZERO)` when
    /// already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines — how a wrapper's window budget
    /// composes with a caller-supplied deadline.
    pub fn earliest(self, other: Deadline) -> Deadline {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Deadline(Some(a.min(b))),
            (Some(a), None) => Deadline(Some(a)),
            (None, b) => Deadline(b),
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::never()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_expires() {
        let d = Deadline::never();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn elapsed_budget_expires() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn earliest_picks_the_tighter_bound() {
        let now = Instant::now();
        let soon = Deadline::at(now + Duration::from_millis(1));
        let late = Deadline::at(now + Duration::from_secs(60));
        assert_eq!(soon.earliest(late), soon);
        assert_eq!(late.earliest(soon), soon);
        assert_eq!(soon.earliest(Deadline::never()), soon);
        assert_eq!(Deadline::never().earliest(soon), soon);
        assert_eq!(
            Deadline::never().earliest(Deadline::never()),
            Deadline::never()
        );
    }
}
