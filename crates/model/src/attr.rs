//! Resource attributes (`H = {1, …, h}` in the paper, Table I).
//!
//! The paper focuses on CPU, RAM and disk but requires the model to be
//! extensible to arbitrary provider attributes, with the consumer and
//! provider attribute sets identical (`h = h'`). [`AttrSet`] enforces that
//! symmetry: one shared set of descriptors indexes both the provider
//! capacity matrix `P` and the consumer demand matrix `C`.

use std::fmt;

/// Index of an attribute within an [`AttrSet`] (the paper's `l`).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct AttrId(pub usize);

impl AttrId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The kind of a resource attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttrKind {
    /// Virtual CPU cores.
    Cpu,
    /// Memory in MiB.
    Ram,
    /// Local disk in GiB.
    Disk,
    /// Network bandwidth in Mbit/s.
    NetBandwidth,
    /// Provider-specific attribute (GPU units, IOPS, licences, …).
    Custom(u32),
}

impl AttrKind {
    /// Short human-readable label used in reports.
    pub fn label(&self) -> String {
        match self {
            AttrKind::Cpu => "cpu".to_string(),
            AttrKind::Ram => "ram".to_string(),
            AttrKind::Disk => "disk".to_string(),
            AttrKind::NetBandwidth => "net".to_string(),
            AttrKind::Custom(n) => format!("custom{n}"),
        }
    }
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The ordered set of attributes shared by provider and consumer resources.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrSet {
    kinds: Vec<AttrKind>,
}

impl AttrSet {
    /// Builds an attribute set from an ordered list of kinds.
    ///
    /// # Panics
    /// Panics if `kinds` is empty (the model needs `h ≥ 1`) or contains
    /// duplicate kinds.
    pub fn new(kinds: Vec<AttrKind>) -> Self {
        assert!(!kinds.is_empty(), "attribute set must not be empty");
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a, b, "duplicate attribute kind {a:?}");
            }
        }
        Self { kinds }
    }

    /// The paper's default three attributes: CPU, RAM, disk.
    pub fn standard() -> Self {
        Self::new(vec![AttrKind::Cpu, AttrKind::Ram, AttrKind::Disk])
    }

    /// Number of attributes (`h`).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `false` always — the constructor rejects empty sets — but provided
    /// for idiomatic pairing with [`AttrSet::len`].
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of attribute `id`.
    #[inline]
    pub fn kind(&self, id: AttrId) -> AttrKind {
        self.kinds[id.0]
    }

    /// Iterator over attribute ids `0..h`.
    pub fn ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.kinds.len()).map(AttrId)
    }

    /// Looks up the id of a kind, if present.
    pub fn find(&self, kind: AttrKind) -> Option<AttrId> {
        self.kinds.iter().position(|k| *k == kind).map(AttrId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_is_cpu_ram_disk() {
        let s = AttrSet::standard();
        assert_eq!(s.len(), 3);
        assert_eq!(s.kind(AttrId(0)), AttrKind::Cpu);
        assert_eq!(s.kind(AttrId(1)), AttrKind::Ram);
        assert_eq!(s.kind(AttrId(2)), AttrKind::Disk);
    }

    #[test]
    fn find_locates_kinds() {
        let s = AttrSet::standard();
        assert_eq!(s.find(AttrKind::Ram), Some(AttrId(1)));
        assert_eq!(s.find(AttrKind::NetBandwidth), None);
    }

    #[test]
    fn ids_cover_the_range() {
        let s = AttrSet::standard();
        let ids: Vec<_> = s.ids().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn custom_attributes_are_supported() {
        let s = AttrSet::new(vec![AttrKind::Cpu, AttrKind::Custom(7)]);
        assert_eq!(s.kind(AttrId(1)).label(), "custom7");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_kinds_rejected() {
        let _ = AttrSet::new(vec![AttrKind::Cpu, AttrKind::Cpu]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_rejected() {
        let _ = AttrSet::new(vec![]);
    }
}
