//! Flat, row-major matrix used for every capacity/cost/load table in the
//! model (Eqs. 1–3, 8 of the paper).
//!
//! The paper manipulates `m × h` and `n × h` matrices; we store them in a
//! single contiguous `Vec` so that scanning a server's attribute row (the hot
//! operation in load and constraint evaluation) is a cache-friendly slice
//! walk, per the Rust Performance Book guidance on data layout.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
///
/// `Matrix<f64>` backs the provider capacity matrix `P`, the consumer demand
/// matrix `C`, the capacity-factor matrix `F` and the load/QoS matrices.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Clone> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Builds a matrix from a row-major `Vec`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Immutable cell access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &T {
        &self.data[r * self.cols + c]
    }

    /// Mutable cell access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut T {
        &mut self.data[r * self.cols + c]
    }

    /// Iterator over `(row, col, &value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i / cols, i % cols, v))
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The raw row-major backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl Matrix<f64> {
    /// Sum of all cells.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest cell value (0.0 for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0_f64, f64::max)
    }

    /// `true` when every cell is finite and non-negative — the validity
    /// requirement the paper places on all capacity matrices (`R+`).
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m: Matrix<f64> = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_lays_out_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn row_slices_are_contiguous() {
        let m = Matrix::from_fn(4, 2, |r, c| r + c);
        assert_eq!(m.row(2), &[2, 3]);
    }

    #[test]
    fn row_mut_updates_cells() {
        let mut m: Matrix<f64> = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn index_out_of_bounds_panics() {
        let m: Matrix<f64> = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn sum_and_max() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.max(), 4.0);
    }

    #[test]
    fn nonnegative_detects_negatives_and_nan() {
        let ok = Matrix::from_vec(1, 2, vec![0.0, 5.0]);
        assert!(ok.is_nonnegative());
        let neg = Matrix::from_vec(1, 2, vec![0.0, -1.0]);
        assert!(!neg.is_nonnegative());
        let nan = Matrix::from_vec(1, 2, vec![0.0, f64::NAN]);
        assert!(!nan.is_nonnegative());
    }

    #[test]
    fn iter_yields_all_cells_with_coordinates() {
        let m = Matrix::from_fn(2, 2, |r, c| r * 2 + c);
        let cells: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(cells, vec![(0, 0, 0), (0, 1, 1), (1, 0, 2), (1, 1, 3)]);
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = Matrix::from_fn(3, 2, |r, c| r + c);
        for (i, row) in m.iter_rows().enumerate() {
            assert_eq!(row, m.row(i));
        }
    }
}
