//! The mapping variable of the model: the paper's boolean tensor
//! `X_{ijk}` (Table I) stored compactly as "server of VM `k`".
//!
//! Because every VM is placed on at most one server, and a server lives in
//! exactly one datacenter, the `g × m × n` boolean tensor collapses to a
//! single `Vec<Option<ServerId>>` indexed by [`VmId`] — the flat layout the
//! performance guide favours and the encoding the paper itself uses for GA
//! chromosomes ("each gene stands for a server ID").

use crate::infrastructure::{DatacenterId, Infrastructure, ServerId};
use crate::request::VmId;

/// A (possibly partial) placement of every requested resource.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assignment {
    placement: Vec<Option<ServerId>>,
}

impl Assignment {
    /// An assignment with all `n` VMs unplaced.
    pub fn unassigned(n: usize) -> Self {
        Self {
            placement: vec![None; n],
        }
    }

    /// Builds an assignment from explicit placements.
    pub fn from_placements(placement: Vec<Option<ServerId>>) -> Self {
        Self { placement }
    }

    /// Builds a *complete* assignment from a gene vector of server indices —
    /// the chromosome decoding used by the evolutionary allocators.
    pub fn from_genes(genes: &[usize]) -> Self {
        Self {
            placement: genes.iter().map(|&j| Some(ServerId(j))).collect(),
        }
    }

    /// Number of VMs covered (assigned or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// `true` when the assignment covers zero VMs.
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Server hosting VM `k`, if assigned.
    #[inline]
    pub fn server_of(&self, k: VmId) -> Option<ServerId> {
        self.placement[k.index()]
    }

    /// Datacenter hosting VM `k`, if assigned.
    #[inline]
    pub fn datacenter_of(&self, k: VmId, infra: &Infrastructure) -> Option<DatacenterId> {
        self.placement[k.index()].map(|s| infra.datacenter_of(s))
    }

    /// Places VM `k` on server `j` (replacing any previous placement).
    #[inline]
    pub fn assign(&mut self, k: VmId, j: ServerId) {
        self.placement[k.index()] = Some(j);
    }

    /// Removes VM `k` from its server.
    #[inline]
    pub fn unassign(&mut self, k: VmId) {
        self.placement[k.index()] = None;
    }

    /// `true` when every VM is placed — the allocation constraint Eq. 5/17
    /// (each requested resource assigned exactly once).
    pub fn is_complete(&self) -> bool {
        self.placement.iter().all(Option::is_some)
    }

    /// Ids of VMs that are not placed.
    pub fn unassigned_vms(&self) -> Vec<VmId> {
        self.placement
            .iter()
            .enumerate()
            .filter_map(|(k, p)| p.is_none().then_some(VmId(k)))
            .collect()
    }

    /// Number of placed VMs.
    pub fn assigned_count(&self) -> usize {
        self.placement.iter().filter(|p| p.is_some()).count()
    }

    /// Iterator over `(VmId, ServerId)` pairs for placed VMs.
    pub fn iter_assigned(&self) -> impl Iterator<Item = (VmId, ServerId)> + '_ {
        self.placement
            .iter()
            .enumerate()
            .filter_map(|(k, p)| p.map(|j| (VmId(k), j)))
    }

    /// The paper's `X_{ijk}` view: is VM `k` on server `j` of datacenter `i`?
    pub fn xijk(&self, i: DatacenterId, j: ServerId, k: VmId, infra: &Infrastructure) -> bool {
        self.placement[k.index()] == Some(j) && infra.datacenter_of(j) == i
    }

    /// Builds the per-server occupancy index: `result[j]` lists the VMs on
    /// global server `j`. Used by load tracking and the tabu repair scan.
    pub fn per_server(&self, m: usize) -> Vec<Vec<VmId>> {
        let mut out = vec![Vec::new(); m];
        for (k, p) in self.placement.iter().enumerate() {
            if let Some(j) = *p {
                out[j.index()].push(VmId(k));
            }
        }
        out
    }

    /// VMs whose server differs between `self` (the plan `X^{t+1}`) and
    /// `previous` (`X^t`) — the reconfiguration plan of Eq. 26. A VM newly
    /// placed (previously unassigned) is *not* a migration; a VM moved or
    /// evicted is.
    pub fn migrations_from(&self, previous: &Assignment) -> Vec<VmId> {
        assert_eq!(
            self.placement.len(),
            previous.placement.len(),
            "assignments cover different VM counts"
        );
        self.placement
            .iter()
            .zip(previous.placement.iter())
            .enumerate()
            .filter_map(|(k, (now, before))| match (before, now) {
                (Some(b), Some(n)) if b != n => Some(VmId(k)),
                (Some(_), None) => Some(VmId(k)), // eviction counts as a move
                _ => None,
            })
            .collect()
    }

    /// Gene-vector view (server index per VM); unassigned VMs map to `m`
    /// (one past the last server), the "parked" gene used by the encoders.
    pub fn to_genes(&self, m: usize) -> Vec<usize> {
        self.placement
            .iter()
            .map(|p| p.map_or(m, |j| j.index()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::infrastructure::{Infrastructure, ServerProfile};

    fn infra() -> Infrastructure {
        let p = ServerProfile::commodity(3);
        Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), p.build_many(2)),
                ("dc1".into(), p.build_many(2)),
            ],
        )
    }

    #[test]
    fn assign_unassign_roundtrip() {
        let mut a = Assignment::unassigned(3);
        assert!(!a.is_complete());
        a.assign(VmId(0), ServerId(1));
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
        a.unassign(VmId(0));
        assert_eq!(a.server_of(VmId(0)), None);
        assert_eq!(a.unassigned_vms().len(), 3);
    }

    #[test]
    fn xijk_view_matches_flat_representation() {
        let infra = infra();
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(2)); // dc1
        assert!(a.xijk(DatacenterId(1), ServerId(2), VmId(0), &infra));
        assert!(!a.xijk(DatacenterId(0), ServerId(2), VmId(0), &infra));
        assert!(!a.xijk(DatacenterId(1), ServerId(3), VmId(0), &infra));
    }

    #[test]
    fn exactly_one_placement_per_vm_by_construction() {
        // The flat representation makes Eq. 5 structural: re-assigning
        // replaces, never duplicates.
        let infra = infra();
        let mut a = Assignment::unassigned(1);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(0), ServerId(3));
        let hosting: usize = infra
            .datacenter_ids()
            .flat_map(|i| infra.server_ids().map(move |j| (i, j)))
            .filter(|&(i, j)| a.xijk(i, j, VmId(0), &infra))
            .count();
        assert_eq!(hosting, 1);
    }

    #[test]
    fn per_server_index_groups_vms() {
        let mut a = Assignment::unassigned(4);
        a.assign(VmId(0), ServerId(1));
        a.assign(VmId(2), ServerId(1));
        a.assign(VmId(3), ServerId(0));
        let idx = a.per_server(4);
        assert_eq!(idx[1], vec![VmId(0), VmId(2)]);
        assert_eq!(idx[0], vec![VmId(3)]);
        assert!(idx[2].is_empty());
    }

    #[test]
    fn migrations_counts_moves_and_evictions_not_new_placements() {
        let mut before = Assignment::unassigned(4);
        before.assign(VmId(0), ServerId(0));
        before.assign(VmId(1), ServerId(1));
        before.assign(VmId(2), ServerId(2));
        let mut after = before.clone();
        after.assign(VmId(0), ServerId(3)); // move
        after.unassign(VmId(1)); // eviction
        after.assign(VmId(3), ServerId(0)); // new placement, not a migration
        assert_eq!(after.migrations_from(&before), vec![VmId(0), VmId(1)]);
    }

    #[test]
    fn gene_roundtrip_preserves_placements() {
        let mut a = Assignment::unassigned(3);
        a.assign(VmId(0), ServerId(2));
        a.assign(VmId(2), ServerId(0));
        let genes = a.to_genes(4);
        assert_eq!(genes, vec![2, 4, 0]); // unassigned parks at m = 4
        let b = Assignment::from_genes(&[2, 1, 0]);
        assert_eq!(b.server_of(VmId(1)), Some(ServerId(1)));
        assert!(b.is_complete());
    }

    #[test]
    #[should_panic(expected = "different VM counts")]
    fn migrations_requires_same_length() {
        let a = Assignment::unassigned(2);
        let b = Assignment::unassigned(3);
        let _ = a.migrations_from(&b);
    }
}
