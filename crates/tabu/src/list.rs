//! The tabu list: a bounded FIFO of recently-applied moves (Glover 1986).

use cpo_model::prelude::{ServerId, VmId};
use std::collections::VecDeque;

/// A move attribute recorded in the tabu list: "VM `vm` was moved away
/// from server `from`". Re-placing the VM back on `from` is tabu while the
/// entry is in tenure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TabuMove {
    /// The moved VM.
    pub vm: VmId,
    /// The server the VM left.
    pub from: ServerId,
}

/// Fixed-tenure tabu list.
#[derive(Clone, Debug)]
pub struct TabuList {
    tenure: usize,
    entries: VecDeque<TabuMove>,
}

impl TabuList {
    /// Creates a list holding at most `tenure` moves.
    pub fn new(tenure: usize) -> Self {
        Self {
            tenure,
            entries: VecDeque::with_capacity(tenure),
        }
    }

    /// Records a move, evicting the oldest entry past tenure.
    pub fn push(&mut self, mv: TabuMove) {
        if self.tenure == 0 {
            return;
        }
        if self.entries.len() == self.tenure {
            self.entries.pop_front();
        }
        self.entries.push_back(mv);
    }

    /// `true` when moving `vm` (back) onto `to` is currently tabu.
    pub fn is_tabu(&self, vm: VmId, to: ServerId) -> bool {
        self.entries.iter().any(|e| e.vm == vm && e.from == to)
    }

    /// Current number of active entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no move is tabu.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The configured tenure.
    pub fn tenure(&self) -> usize {
        self.tenure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_moves_become_tabu() {
        let mut list = TabuList::new(3);
        list.push(TabuMove {
            vm: VmId(1),
            from: ServerId(5),
        });
        assert!(list.is_tabu(VmId(1), ServerId(5)));
        assert!(!list.is_tabu(VmId(1), ServerId(4)));
        assert!(!list.is_tabu(VmId(2), ServerId(5)));
    }

    #[test]
    fn tenure_evicts_oldest() {
        let mut list = TabuList::new(2);
        list.push(TabuMove {
            vm: VmId(0),
            from: ServerId(0),
        });
        list.push(TabuMove {
            vm: VmId(1),
            from: ServerId(1),
        });
        list.push(TabuMove {
            vm: VmId(2),
            from: ServerId(2),
        });
        assert!(
            !list.is_tabu(VmId(0), ServerId(0)),
            "oldest must be evicted"
        );
        assert!(list.is_tabu(VmId(1), ServerId(1)));
        assert!(list.is_tabu(VmId(2), ServerId(2)));
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn zero_tenure_disables_memory() {
        let mut list = TabuList::new(0);
        list.push(TabuMove {
            vm: VmId(0),
            from: ServerId(0),
        });
        assert!(list.is_empty());
        assert!(!list.is_tabu(VmId(0), ServerId(0)));
    }

    #[test]
    fn clear_resets() {
        let mut list = TabuList::new(4);
        list.push(TabuMove {
            vm: VmId(0),
            from: ServerId(0),
        });
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.tenure(), 4);
    }
}
