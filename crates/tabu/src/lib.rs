//! # cpo-tabu — tabu search and the constraint-repair operator
//!
//! The paper's contribution hybridises NSGA-III with a tabu search used as
//! a *repair* operator (Figs. 4–6): whenever an individual violates the
//! user constraints, the tabu search scans the servers whose constraints
//! are exceeded and relocates each offending VM to the nearest valid
//! neighbour server. This crate provides:
//!
//! * [`list`] — the classic bounded tabu list (Glover 1986);
//! * [`mod@repair`] — the paper's REPAIR / FINDNEIGHBOR procedures
//!   (Figs. 5–6), generalised to affinity violations and configurable
//!   scan orders (first-fit, nearest-first, best-cost) for ablations;
//! * [`search`] — a standalone tabu-search optimiser over assignments
//!   (relocation neighbourhood, aspiration criterion) used for polishing
//!   and ablation baselines; anytime (deadline-bounded) and observable;
//! * [`parallel`] — partitioned neighborhood scanning behind
//!   [`search`]'s deterministic modes: contiguous chunks of the
//!   canonical scan order, one pooled `DeltaEvaluator` per worker, and a
//!   first-wins reduction that is bit-identical to the serial scan.
//!
//! ```
//! use cpo_model::prelude::*;
//! use cpo_model::attr::AttrSet;
//! use cpo_tabu::repair::{repair, RepairConfig};
//!
//! let infra = Infrastructure::new(
//!     AttrSet::standard(),
//!     vec![("dc".into(), ServerProfile::commodity(3).build_many(2))],
//! );
//! let mut batch = RequestBatch::new();
//! batch.push_request(vec![vm_spec(20.0, 1.0, 1.0), vm_spec(20.0, 1.0, 1.0)], vec![]);
//! let problem = AllocationProblem::new(infra, batch, None);
//!
//! // Both 20-vCPU VMs on one 28.8-vCPU server: invalid individual.
//! let mut x = Assignment::from_genes(&[0, 0]);
//! let outcome = repair(&problem, &mut x, &RepairConfig::default());
//! assert!(outcome.feasible);
//! ```

#![warn(missing_docs)]

pub mod list;
pub mod parallel;
pub mod repair;
pub mod search;

pub use list::{TabuList, TabuMove};
pub use repair::{faulty_vms, find_neighbour, repair, RepairConfig, RepairOutcome, ScanOrder};
pub use search::{
    score, tabu_search, tabu_search_observed, Neighborhood, NoObserver, Score, Scoring,
    SearchObserver, TabuConfig, TabuResult,
};
