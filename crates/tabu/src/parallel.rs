//! Parallel neighborhood scanning for the tabu engine.
//!
//! The exhaustive `n·m` relocation scan (and any explicit candidate
//! list) is partitioned into [`TabuConfig::threads`] **contiguous**
//! chunks of the canonical `(vm, server)` order. Each chunk is scored by
//! a dedicated scan worker — a [`DeltaEvaluator`] drawn from an
//! [`EvaluatorPool`] at search start and held for the whole search —
//! and reduced to the chunk's *first* strictly-best move. The global
//! reduction then walks the chunks **in canonical order**, replacing the
//! running winner only on a strictly better score.
//!
//! ## Reduction rules (why this is bit-identical to the serial scan)
//!
//! The serial scan keeps the first candidate that strictly beats the
//! running best ([`Score::better_than`] is a strict lexicographic
//! comparison), i.e. it selects the **earliest canonical pair among the
//! minimal-score admissible candidates**. Because chunks are contiguous
//! in canonical order and both the per-chunk fold and the cross-chunk
//! fold use the same first-wins strict comparison, the parallel
//! reduction selects exactly that pair. Candidate scores themselves are
//! bit-identical on every worker: each worker's evaluator replays the
//! same committed-move sequence as the serial engine, and
//! [`DeltaEvaluator::peek_relocate`] is a pure function of that state.
//!
//! The per-pair **work** (the `DeltaEvaluator::work` unit) is likewise a
//! pure function of the committed state, so the sum of the workers'
//! scan work equals the serial scan's work exactly — `TabuResult`
//! counters are bit-identical at any thread count, which is what
//! `tests/parallel_search_differential.rs` pins.
//!
//! Physical parallelism comes from the `rayon` `par_iter` over the chunk
//! descriptors; on a single-core host the chunks run serially on one
//! thread (each briefly locking its own uncontended worker mutex) and
//! the result is — by the argument above — still identical.

use crate::list::TabuList;
use crate::search::Score;
use cpo_model::delta::DeltaEvaluator;
use cpo_model::eval_pool::EvaluatorPool;
use cpo_model::prelude::*;
use rayon::prelude::*;
use std::sync::Mutex;

/// A candidate move the scan considers: `(vm, target server, score,
/// accepted-via-aspiration)`.
pub(crate) type Candidate = (VmId, ServerId, Score, bool);

/// The candidate pairs one scan covers, in canonical order.
pub(crate) enum ScanSet<'s> {
    /// The full `n·m` relocation scan, VM-major (no-ops skipped inline).
    Flat {
        /// VM count.
        n: usize,
        /// Server count.
        m: usize,
    },
    /// An explicit candidate list (already canonically ordered by the
    /// generation strategy).
    Pairs(&'s [(VmId, ServerId)]),
}

impl ScanSet<'_> {
    pub(crate) fn len(&self) -> usize {
        match self {
            ScanSet::Flat { n, m } => n * m,
            ScanSet::Pairs(p) => p.len(),
        }
    }

    #[inline]
    pub(crate) fn pair(&self, idx: usize) -> (VmId, ServerId) {
        match self {
            ScanSet::Flat { m, .. } => (VmId(idx / m), ServerId(idx % m)),
            ScanSet::Pairs(p) => p[idx],
        }
    }
}

/// Winner and counters of one scanned chunk.
struct ChunkScan {
    best: Option<Candidate>,
    scanned: usize,
    evals: usize,
    work: u64,
}

/// Aggregated result of one whole scan.
pub(crate) struct ScanOutcome {
    /// The earliest canonical admissible candidate of minimal score.
    pub best: Option<Candidate>,
    /// Candidates actually scored (no-ops excluded).
    pub scanned: usize,
    /// Delta evaluations performed (== `scanned`; kept separate to
    /// mirror the serial engine's counters).
    pub evals: usize,
    /// Model-cell work spent peeking, in the `DeltaEvaluator::work`
    /// unit.
    pub work: u64,
}

/// The per-search team of scan workers: one pooled [`DeltaEvaluator`]
/// per configured thread, kept in lock-step with the search's committed
/// trajectory via [`commit`](Self::commit).
pub(crate) struct ScanWorkers<'p> {
    pool: EvaluatorPool<'p>,
    workers: Vec<Mutex<DeltaEvaluator<'p>>>,
}

impl<'p> ScanWorkers<'p> {
    /// Draws `threads` evaluators holding `start` from a fresh pool.
    pub fn new(problem: &'p AllocationProblem, start: &Assignment, threads: usize) -> Self {
        let pool = EvaluatorPool::new(problem);
        let workers = (0..threads.max(1))
            .map(|_| Mutex::new(pool.checkout(start.clone())))
            .collect();
        Self { pool, workers }
    }

    /// Number of worker slots (== configured threads).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Replays an accepted move on every worker so the next scan peeks
    /// from the same committed state as the main engine. Runs outside
    /// the measured scan window: sync work is excluded from the
    /// search's `eval_work` so the counter stays bit-identical to the
    /// serial engine's.
    pub fn commit(&self, k: VmId, j: ServerId) {
        for w in &self.workers {
            let mut ev = w.lock().expect("scan worker poisoned");
            ev.apply(k, j);
            ev.clear_history();
        }
    }

    /// Scans `set` against `tabu` and the incumbent `best_score`,
    /// partitioned across the workers; see the module docs for the
    /// reduction rules.
    pub fn scan(&self, set: &ScanSet<'_>, tabu: &TabuList, best_score: Score) -> ScanOutcome {
        let total = set.len();
        let threads = self.workers.len();
        let chunk = total.div_ceil(threads.max(1)).max(1);
        // One descriptor per worker slot: (worker index, chunk bounds).
        let jobs: Vec<(usize, usize, usize)> = (0..threads)
            .map(|wi| {
                let lo = (wi * chunk).min(total);
                let hi = (lo + chunk).min(total);
                (wi, lo, hi)
            })
            .collect();
        let chunks: Vec<ChunkScan> = jobs
            .par_iter()
            .map(|&(wi, lo, hi)| {
                let mut ev = self.workers[wi].lock().expect("scan worker poisoned");
                let w0 = ev.work();
                let mut best: Option<Candidate> = None;
                let mut scanned = 0usize;
                let mut evals = 0usize;
                for idx in lo..hi {
                    let (k, j) = set.pair(idx);
                    if ev.assignment().server_of(k) == Some(j) {
                        continue;
                    }
                    scanned += 1;
                    evals += 1;
                    let is_tabu = tabu.is_tabu(k, j);
                    let s: Score = ev.peek_relocate(k, j).into();
                    let aspirated = is_tabu && s.better_than(&best_score);
                    if is_tabu && !aspirated {
                        continue;
                    }
                    let better = match &best {
                        None => true,
                        Some((_, _, cs, _)) => s.better_than(cs),
                    };
                    if better {
                        best = Some((k, j, s, aspirated));
                    }
                }
                ChunkScan {
                    best,
                    scanned,
                    evals,
                    work: ev.work() - w0,
                }
            })
            .collect();

        // Cross-chunk reduction in canonical (chunk) order: strictly
        // better replaces, ties keep the earlier chunk's winner.
        let mut out = ScanOutcome {
            best: None,
            scanned: 0,
            evals: 0,
            work: 0,
        };
        for c in chunks {
            out.scanned += c.scanned;
            out.evals += c.evals;
            out.work += c.work;
            if let Some(cand) = c.best {
                let better = match &out.best {
                    None => true,
                    Some((_, _, cs, _)) => cand.2.better_than(cs),
                };
                if better {
                    out.best = Some(cand);
                }
            }
        }
        out
    }

    /// Returns every worker evaluator to the pool and hands the pool
    /// back (its `idle()` then equals the worker count — the audit
    /// diagnostic the pool's docs describe).
    pub fn into_pool(self) -> EvaluatorPool<'p> {
        for w in self.workers {
            self.pool
                .checkin(w.into_inner().expect("scan worker poisoned"));
        }
        self.pool
    }
}
