//! The paper's repair operator (Figs. 5–6): make an invalid individual
//! comply with the constraints by relocating offending VMs.
//!
//! ```text
//! procedure REPAIR(I)
//!   serversError ← exceedingDetection(I)
//!   for i in numberOfVM():
//!     if getServerOfVM(I, i) ∈ serversError:
//!       I(i) ← findNeighbour(I, i)
//!
//! procedure FINDNEIGHBOR(I, i)
//!   for j in numberOfServer(I):
//!     if isValidAllocation(i, j): return j
//! ```
//!
//! We extend `exceedingDetection` beyond capacity to affinity violations
//! (the paper's repair targets "every faulty gene found within an
//! individual") and make `findNeighbour` scan outward from the VM's
//! current server so fixes stay local — the "nearest valid neighbor" of
//! Fig. 6's caption.

use crate::list::{TabuList, TabuMove};
use cpo_model::delta::DeltaEvaluator;
use cpo_model::prelude::*;

/// Configuration of the repair pass.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Tabu tenure: forbids ping-ponging a VM back to a server it just
    /// left within the same repair invocation.
    pub tenure: usize,
    /// Maximum full passes over the individual before giving up.
    pub max_passes: usize,
    /// Neighbour scan order.
    pub scan: ScanOrder,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            tenure: 16,
            max_passes: 4,
            scan: ScanOrder::NearestFirst,
        }
    }
}

/// How `findNeighbour` walks the server list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanOrder {
    /// Ring scan outward from the VM's current server (nearest first).
    NearestFirst,
    /// Plain `0..m` scan (the literal Fig. 6 pseudo-code).
    FirstFit,
    /// Scan servers by ascending projected cost (best-fit by opex+usage).
    BestCost,
}

/// Outcome of a repair invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Number of VMs moved.
    pub moves: usize,
    /// Whether the assignment is feasible after repair.
    pub feasible: bool,
    /// Full passes over the individual actually performed.
    pub passes: usize,
}

/// Is placing `k` on `j` valid *right now*: capacity (with `k` added) and
/// the affinity rules of `k`'s request — the paper's `isValidAllocation`.
pub fn is_valid_allocation(
    problem: &AllocationProblem,
    assignment: &Assignment,
    tracker: &LoadTracker,
    k: VmId,
    j: ServerId,
) -> bool {
    tracker.fits(k, j, problem.batch(), problem.infra()) && problem.rules_allow(assignment, k, j)
}

fn scan_candidates(
    problem: &AllocationProblem,
    current: Option<ServerId>,
    order: ScanOrder,
) -> Vec<ServerId> {
    let m = problem.m();
    match order {
        ScanOrder::FirstFit => (0..m).map(ServerId).collect(),
        ScanOrder::NearestFirst => {
            let c = current.map_or(0, |s| s.index());
            // Ring: c+1, c-1, c+2, c-2, … wrapping, ending with c itself.
            let mut out = Vec::with_capacity(m);
            let mut seen = vec![false; m];
            for d in 1..m {
                for idx in [(c + d) % m, (c + m - d % m) % m] {
                    if !seen[idx] && idx != c {
                        seen[idx] = true;
                        out.push(ServerId(idx));
                    }
                }
            }
            out.push(ServerId(c));
            out
        }
        ScanOrder::BestCost => {
            let mut servers: Vec<ServerId> = (0..m).map(ServerId).collect();
            servers.sort_by(|&a, &b| {
                let ca = problem.infra().server(a);
                let cb = problem.infra().server(b);
                (ca.opex + ca.usage_cost)
                    .partial_cmp(&(cb.opex + cb.usage_cost))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            servers
        }
    }
}

/// `findNeighbour` (Fig. 6): the first server that validly hosts `k`,
/// skipping tabu placements. Returns `None` if no server qualifies.
pub fn find_neighbour(
    problem: &AllocationProblem,
    assignment: &Assignment,
    tracker: &LoadTracker,
    tabu: &TabuList,
    k: VmId,
    order: ScanOrder,
) -> Option<ServerId> {
    let candidates = scan_candidates(problem, assignment.server_of(k), order);
    find_neighbour_in(problem, assignment, tracker, tabu, k, &candidates)
}

/// [`find_neighbour`] over a precomputed candidate order — the hot path
/// used by [`repair`], which computes position-independent scan orders
/// (first-fit, best-cost) once per invocation instead of once per VM.
pub fn find_neighbour_in(
    problem: &AllocationProblem,
    assignment: &Assignment,
    tracker: &LoadTracker,
    tabu: &TabuList,
    k: VmId,
    candidates: &[ServerId],
) -> Option<ServerId> {
    let current = assignment.server_of(k);
    for &j in candidates {
        if Some(j) == current {
            continue;
        }
        if tabu.is_tabu(k, j) {
            continue;
        }
        if is_valid_allocation(problem, assignment, tracker, k, j) {
            return Some(j);
        }
    }
    None
}

/// VMs that currently sit on a faulty gene: on an overloaded server, on no
/// server, or party to a violated affinity rule — the generalised
/// `exceedingDetection` (Fig. 5, line 2).
pub fn faulty_vms(problem: &AllocationProblem, assignment: &Assignment) -> Vec<VmId> {
    let tracker = problem.tracker(assignment);
    let exceeding = tracker.exceeding_servers(problem.infra());
    let mut faulty = vec![false; problem.n()];
    for k in problem.batch().vm_ids() {
        match assignment.server_of(k) {
            None => faulty[k.index()] = true,
            Some(j) => {
                if exceeding.contains(&j) {
                    faulty[k.index()] = true;
                }
            }
        }
    }
    for req in problem.batch().requests() {
        for rule in &req.rules {
            if !rule.is_satisfied(assignment, problem.infra()) {
                for &k in rule.vms() {
                    faulty[k.index()] = true;
                }
            }
        }
    }
    faulty
        .iter()
        .enumerate()
        .filter_map(|(k, &f)| f.then_some(VmId(k)))
        .collect()
}

/// The same-server co-location group of VM `k` within its request (the
/// union of same-server rules containing `k`), or `None` when `k` is
/// unpinned. A pinned VM cannot move alone — the whole group must move.
pub fn same_server_group(problem: &AllocationProblem, k: VmId) -> Option<Vec<VmId>> {
    let req = problem.batch().request(problem.batch().request_of(k));
    let mut group: Vec<VmId> = Vec::new();
    for rule in &req.rules {
        if rule.kind() == AffinityKind::SameServer && rule.vms().contains(&k) {
            for &v in rule.vms() {
                if !group.contains(&v) {
                    group.push(v);
                }
            }
        }
    }
    (group.len() >= 2).then_some(group)
}

/// Attempts to move an entire same-server group to one server that can
/// take it whole. Restores the original placement (via the evaluator's
/// undo stack) on failure. Expects an empty undo history on entry.
fn try_group_move(
    problem: &AllocationProblem,
    ev: &mut DeltaEvaluator<'_>,
    group: &[VmId],
    order: ScanOrder,
) -> bool {
    debug_assert_eq!(ev.history_len(), 0, "caller must clear history");
    let batch = problem.batch();
    let anchor = group.first().and_then(|&k| ev.assignment().server_of(k));
    // Detach the group (recorded on the undo stack).
    for &k in group {
        ev.unassign_vm(k);
    }
    // Total group demand per attribute.
    let h = problem.h();
    let mut total = vec![0.0_f64; h];
    for &k in group {
        for (l, t) in total.iter_mut().enumerate() {
            *t += batch.vm(k).demand[l];
        }
    }
    for j in scan_candidates(problem, anchor, order) {
        // Whole-group capacity check.
        let used = ev.tracker().used_row(j);
        let cap = problem.infra().effective_row(j);
        let fits = used
            .iter()
            .zip(&total)
            .zip(cap)
            .all(|((u, t), c)| u + t <= c + 1e-9);
        if !fits {
            continue;
        }
        // Rules vs VMs outside the group (intra-group same-server holds by
        // construction once all land on j).
        if !group
            .iter()
            .all(|&k| problem.rules_allow(ev.assignment(), k, j))
        {
            continue;
        }
        for &k in group {
            ev.apply(k, j);
        }
        ev.clear_history();
        return true;
    }
    // Restore the original placement.
    while ev.undo() {}
    false
}

/// The paper's REPAIR procedure (Fig. 5), generalised and iterated: scans
/// for faulty VMs and relocates each to its nearest valid neighbour,
/// repeating up to `config.max_passes` times (moving one VM can fix or
/// break others, e.g. in same-server groups). VMs pinned by a same-server
/// rule move as a whole group when a lone move is impossible.
pub fn repair(
    problem: &AllocationProblem,
    assignment: &mut Assignment,
    config: &RepairConfig,
) -> RepairOutcome {
    let mut tabu = TabuList::new(config.tenure);
    // The evaluator takes over the caller's assignment for the duration of
    // the repair: its maintained state answers "is this VM still faulty"
    // and "is the result feasible" in O(1)/O(rules(k)) instead of the old
    // per-pass tracker rebuilds.
    let owned = std::mem::replace(assignment, Assignment::unassigned(0));
    let mut ev = DeltaEvaluator::new(problem, owned);
    let mut moves = 0usize;

    // Position-independent scan orders are computed once; NearestFirst
    // depends on each VM's current server and stays per-VM.
    let cached_order: Option<Vec<ServerId>> = match config.scan {
        ScanOrder::NearestFirst => None,
        order => Some(scan_candidates(problem, None, order)),
    };

    let mut passes = 0usize;
    for _pass in 0..config.max_passes {
        if ev.is_feasible() {
            break;
        }
        let faulty = ev.faulty_vms();
        if faulty.is_empty() {
            break;
        }
        passes += 1;
        let mut progressed = false;
        for k in faulty {
            // Skip VMs whose situation got fixed by an earlier move in
            // this pass.
            let still_faulty = match ev.assignment().server_of(k) {
                None => true,
                Some(j) => {
                    ev.server_overloaded(j)
                        || !problem.rules_allow(ev.assignment(), k, j)
                        || ev.vm_has_broken_rule(k)
                }
            };
            if !still_faulty {
                continue;
            }
            let found = match &cached_order {
                Some(order) => {
                    find_neighbour_in(problem, ev.assignment(), ev.tracker(), &tabu, k, order)
                }
                None => find_neighbour(
                    problem,
                    ev.assignment(),
                    ev.tracker(),
                    &tabu,
                    k,
                    config.scan,
                ),
            };
            match found {
                Some(target) => {
                    if let Some(from) = ev.assignment().server_of(k) {
                        tabu.push(TabuMove { vm: k, from });
                    }
                    ev.apply(k, target);
                    ev.clear_history();
                    moves += 1;
                    progressed = true;
                }
                None => {
                    // A VM pinned by a same-server rule cannot move alone:
                    // relocate the whole co-location group.
                    if let Some(group) = same_server_group(problem, k) {
                        if try_group_move(problem, &mut ev, &group, config.scan) {
                            moves += group.len();
                            progressed = true;
                        }
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }

    let feasible = ev.is_feasible();
    *assignment = ev.into_assignment();
    cpo_obs::counter_add("tabu.repair_calls", 1);
    cpo_obs::counter_add("tabu.repair_moves", moves as u64);
    cpo_obs::counter_add("tabu.repair_passes", passes as u64);
    RepairOutcome {
        moves,
        feasible,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem_with(
        servers_per_dc: &[usize],
        requests: Vec<(Vec<VmSpec>, Vec<AffinityRule>)>,
    ) -> AllocationProblem {
        let profile = ServerProfile::commodity(3);
        let dcs = servers_per_dc
            .iter()
            .enumerate()
            .map(|(i, &n)| (format!("dc{i}"), profile.build_many(n)))
            .collect();
        let infra = Infrastructure::new(AttrSet::standard(), dcs);
        let mut batch = RequestBatch::new();
        for (vms, rules) in requests {
            batch.push_request(vms, rules);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn repair_fixes_capacity_overload() {
        // Two VMs of 20 cpu each on one 28.8-effective server: overloaded.
        let p = problem_with(
            &[2],
            vec![(
                vec![vm_spec(20.0, 1024.0, 10.0), vm_spec(20.0, 1024.0, 10.0)],
                vec![],
            )],
        );
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0));
        assert!(!p.is_feasible(&a));
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert!(outcome.feasible, "repair must spread the VMs");
        assert!(outcome.moves >= 1);
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
    }

    #[test]
    fn repair_places_unassigned_vms() {
        let p = problem_with(&[2], vec![(vec![vm_spec(1.0, 1.0, 1.0); 2], vec![])]);
        let mut a = Assignment::unassigned(2);
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert!(outcome.feasible);
        assert!(a.is_complete());
    }

    #[test]
    fn repair_fixes_separation_rule() {
        let p = problem_with(
            &[3],
            vec![(
                vec![vm_spec(1.0, 1.0, 1.0); 2],
                vec![AffinityRule::new(
                    AffinityKind::DifferentServer,
                    vec![VmId(0), VmId(1)],
                )],
            )],
        );
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(1));
        a.assign(VmId(1), ServerId(1)); // violates separation
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert!(outcome.feasible);
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
    }

    #[test]
    fn repair_fixes_same_datacenter_rule() {
        let p = problem_with(
            &[2, 2],
            vec![(
                vec![vm_spec(1.0, 1.0, 1.0); 2],
                vec![AffinityRule::new(
                    AffinityKind::SameDatacenter,
                    vec![VmId(0), VmId(1)],
                )],
            )],
        );
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0)); // dc0
        a.assign(VmId(1), ServerId(2)); // dc1 — violation
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert!(outcome.feasible, "same-dc rule must be repaired");
        let dc0 = p.infra().datacenter_of(a.server_of(VmId(0)).unwrap());
        let dc1 = p.infra().datacenter_of(a.server_of(VmId(1)).unwrap());
        assert_eq!(dc0, dc1);
    }

    #[test]
    fn repair_reports_infeasible_when_capacity_is_short() {
        // One server, two VMs that can never share it.
        let p = problem_with(
            &[1],
            vec![(
                vec![vm_spec(20.0, 1.0, 1.0), vm_spec(20.0, 1.0, 1.0)],
                vec![],
            )],
        );
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0));
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert!(!outcome.feasible, "no repair exists on one server");
    }

    #[test]
    fn feasible_input_is_untouched() {
        let p = problem_with(&[2], vec![(vec![vm_spec(1.0, 1.0, 1.0); 2], vec![])]);
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(1));
        let before = a.clone();
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert_eq!(outcome.moves, 0);
        assert_eq!(a, before);
    }

    #[test]
    fn find_neighbour_skips_tabu_servers() {
        let p = problem_with(&[3], vec![(vec![vm_spec(1.0, 1.0, 1.0)], vec![])]);
        let a = {
            let mut a = Assignment::unassigned(1);
            a.assign(VmId(0), ServerId(0));
            a
        };
        let tracker = p.tracker(&a);
        let mut tabu = TabuList::new(4);
        tabu.push(TabuMove {
            vm: VmId(0),
            from: ServerId(1),
        });
        let found = find_neighbour(&p, &a, &tracker, &tabu, VmId(0), ScanOrder::FirstFit)
            .expect("server 2 remains");
        assert_eq!(found, ServerId(2));
    }

    #[test]
    fn scan_orders_cover_all_servers() {
        let p = problem_with(&[5], vec![(vec![vm_spec(1.0, 1.0, 1.0)], vec![])]);
        for order in [
            ScanOrder::FirstFit,
            ScanOrder::NearestFirst,
            ScanOrder::BestCost,
        ] {
            let c = scan_candidates(&p, Some(ServerId(2)), order);
            let mut sorted: Vec<usize> = c.iter().map(|s| s.index()).collect();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                vec![0, 1, 2, 3, 4],
                "order {order:?} must cover all"
            );
        }
    }

    #[test]
    fn nearest_first_prefers_adjacent_servers() {
        let p = problem_with(&[10], vec![(vec![vm_spec(1.0, 1.0, 1.0)], vec![])]);
        let c = scan_candidates(&p, Some(ServerId(5)), ScanOrder::NearestFirst);
        assert_eq!(c[0], ServerId(6));
        assert_eq!(c[1], ServerId(4));
    }

    #[test]
    fn best_cost_prefers_cheap_servers() {
        let profile = ServerProfile::commodity(3);
        let mut cheap = profile.build();
        cheap.opex = 1.0;
        let mut dear = profile.build();
        dear.opex = 100.0;
        let infra =
            Infrastructure::new(AttrSet::standard(), vec![("dc".into(), vec![dear, cheap])]);
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 1.0, 1.0)], vec![]);
        let p = AllocationProblem::new(infra, batch, None);
        let c = scan_candidates(&p, None, ScanOrder::BestCost);
        assert_eq!(c[0], ServerId(1), "cheap server first");
    }

    #[test]
    fn pinned_same_server_group_moves_as_a_unit() {
        // A 2-VM same-server group plus a fat VM overload server 0; the
        // group members cannot move alone (the rule pins them), so the
        // repair must relocate the whole group.
        let p = problem_with(
            &[2],
            vec![
                (
                    vec![vm_spec(8.0, 1.0, 1.0), vm_spec(8.0, 1.0, 1.0)],
                    vec![AffinityRule::new(
                        AffinityKind::SameServer,
                        vec![VmId(0), VmId(1)],
                    )],
                ),
                (vec![vm_spec(20.0, 1.0, 1.0)], vec![]),
            ],
        );
        let mut a = Assignment::from_genes(&[0, 0, 0]); // 36 cpu on 28.8
        assert!(!p.is_feasible(&a));
        let outcome = repair(&p, &mut a, &RepairConfig::default());
        assert!(outcome.feasible, "group or fat VM must relocate: {a:?}");
        assert_eq!(
            a.server_of(VmId(0)),
            a.server_of(VmId(1)),
            "rule must survive the repair"
        );
    }

    #[test]
    fn same_server_group_lookup() {
        let p = problem_with(
            &[2],
            vec![(
                vec![vm_spec(1.0, 1.0, 1.0); 3],
                vec![AffinityRule::new(
                    AffinityKind::SameServer,
                    vec![VmId(0), VmId(2)],
                )],
            )],
        );
        assert_eq!(same_server_group(&p, VmId(0)), Some(vec![VmId(0), VmId(2)]));
        assert_eq!(same_server_group(&p, VmId(1)), None);
    }

    #[test]
    fn faulty_vms_flags_all_offenders() {
        let p = problem_with(
            &[2],
            vec![
                (
                    vec![vm_spec(20.0, 1.0, 1.0), vm_spec(20.0, 1.0, 1.0)],
                    vec![],
                ),
                (vec![vm_spec(1.0, 1.0, 1.0)], vec![]),
            ],
        );
        let mut a = Assignment::unassigned(3);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0)); // overloads server 0
                                        // VmId(2) unassigned.
        let faulty = faulty_vms(&p, &a);
        assert_eq!(faulty, vec![VmId(0), VmId(1), VmId(2)]);
    }
}
