//! A standalone tabu-search optimiser over assignments (Glover 1986) —
//! the "local heuristic search procedure (guided) to explore the solution
//! space beyond local optimality by moving virtual machines on different
//! servers" the paper embeds in its hybrid; usable on its own for
//! ablations and as a post-optimisation polish.
//!
//! Candidate relocations are scored through
//! [`DeltaEvaluator`](cpo_model::delta::DeltaEvaluator) by default —
//! O(occupancy·h + rules(vm)) per candidate instead of a from-scratch
//! O(n·h + m·h + rules) recompute — with [`Scoring::Full`] kept as the
//! differential oracle. Delta scores are bit-identical to full scores, so
//! the two modes walk the exact same trajectory (pinned by
//! `tests/delta_differential.rs`).

use crate::list::{TabuList, TabuMove};
use cpo_model::delta::{DeltaEvaluator, MoveScore};
use cpo_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How candidate relocations are scored.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scoring {
    /// Incremental delta evaluation (the fast path and the default).
    #[default]
    Delta,
    /// From-scratch check + evaluate per candidate, sharing one
    /// [`LoadTracker`] between the two — the slow-path oracle the
    /// differential tests compare against.
    Full,
}

/// How the per-iteration candidate set is generated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Neighborhood {
    /// `candidates` random `(vm, server)` draws per iteration (the
    /// paper's sampling scheme).
    #[default]
    Sampled,
    /// Deterministic scan of all `n·m` relocations per iteration — no
    /// RNG involved; affordable now that scoring is incremental.
    Exhaustive,
}

/// Tabu-search configuration.
#[derive(Clone, Copy, Debug)]
pub struct TabuConfig {
    /// Tabu tenure.
    pub tenure: usize,
    /// Iteration budget (one move per iteration).
    pub max_iterations: usize,
    /// Candidate moves sampled per iteration (ignored by
    /// [`Neighborhood::Exhaustive`]).
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
    /// Candidate scoring mode.
    pub scoring: Scoring,
    /// Candidate generation mode.
    pub neighborhood: Neighborhood,
}

impl Default for TabuConfig {
    fn default() -> Self {
        Self {
            tenure: 24,
            max_iterations: 500,
            candidates: 32,
            seed: 0,
            scoring: Scoring::Delta,
            neighborhood: Neighborhood::Sampled,
        }
    }
}

/// Search quality of an assignment: infeasibility first, then Eq. 15 total.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Score {
    /// Total constraint-violation degree (0 = feasible).
    pub violation: f64,
    /// Aggregate objective (Eq. 15 equal weights).
    pub total_cost: f64,
}

impl Score {
    /// Lexicographic comparison: less violating wins; ties by cost.
    pub fn better_than(&self, other: &Score) -> bool {
        if self.violation != other.violation {
            return self.violation < other.violation;
        }
        self.total_cost < other.total_cost
    }
}

impl From<MoveScore> for Score {
    fn from(ms: MoveScore) -> Self {
        Score {
            violation: ms.violation,
            total_cost: ms.total_cost(),
        }
    }
}

/// Scores an assignment from scratch, building ONE tracker shared by the
/// constraint check and the objective evaluation (each used to build its
/// own — a silent 2× on the hot path).
pub fn score(problem: &AllocationProblem, assignment: &Assignment) -> Score {
    let tracker = problem.tracker(assignment);
    Score {
        violation: problem.check_with_tracker(assignment, &tracker).degree(),
        total_cost: problem.evaluate_with_tracker(assignment, &tracker).total(),
    }
}

/// Result of a tabu-search run.
#[derive(Clone, Debug)]
pub struct TabuResult {
    /// Best assignment found.
    pub best: Assignment,
    /// Score of the best assignment.
    pub best_score: Score,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Moves accepted.
    pub accepted_moves: usize,
    /// Tabu moves accepted via the aspiration criterion.
    pub aspiration_hits: usize,
    /// Distinct candidate relocations scored across all iterations
    /// (duplicate draws within an iteration are deduplicated).
    pub candidates_scanned: usize,
    /// Candidates scored through the delta evaluator.
    pub delta_evals: usize,
    /// Candidates scored by full recompute.
    pub full_evals: usize,
    /// Heavy model-cell operations spent scoring (the unit
    /// [`DeltaEvaluator::work`] defines) — the quantity the ≥5×
    /// delta-vs-full regression test pins.
    pub eval_work: u64,
}

/// The two scoring backends behind one interface. `Delta` owns the current
/// assignment inside the evaluator; `Full` carries it alongside.
enum ScoreEngine<'p> {
    Delta {
        ev: Box<DeltaEvaluator<'p>>,
        /// Work already booked when the engine was built (the initial
        /// state construction), excluded from `eval_work`.
        base_work: u64,
        evals: usize,
    },
    Full {
        problem: &'p AllocationProblem,
        current: Assignment,
        /// Σ rule member counts, for the analytic per-eval work cost.
        total_rule_vms: u64,
        work: u64,
        evals: usize,
    },
}

impl<'p> ScoreEngine<'p> {
    fn new(problem: &'p AllocationProblem, start: Assignment, scoring: Scoring) -> Self {
        match scoring {
            Scoring::Delta => {
                let ev = Box::new(DeltaEvaluator::new(problem, start));
                let base_work = ev.work();
                ScoreEngine::Delta {
                    ev,
                    base_work,
                    evals: 0,
                }
            }
            Scoring::Full => {
                let total_rule_vms = problem
                    .batch()
                    .requests()
                    .iter()
                    .flat_map(|r| r.rules.iter())
                    .map(|rule| rule.vms().len() as u64)
                    .sum();
                ScoreEngine::Full {
                    problem,
                    current: start,
                    total_rule_vms,
                    work: 0,
                    evals: 0,
                }
            }
        }
    }

    fn server_of(&self, k: VmId) -> Option<ServerId> {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.assignment().server_of(k),
            ScoreEngine::Full { current, .. } => current.server_of(k),
        }
    }

    fn current(&self) -> &Assignment {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.assignment(),
            ScoreEngine::Full { current, .. } => current,
        }
    }

    /// Scores the current assignment (start-of-search baseline).
    fn score_current(&mut self) -> Score {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.score().into(),
            ScoreEngine::Full {
                problem,
                current,
                total_rule_vms,
                work,
                evals,
            } => {
                *evals += 1;
                let (s, w) = full_score_with_work(problem, current, *total_rule_vms);
                *work += w;
                s
            }
        }
    }

    /// Scores "relocate `k` to `j`" without changing the current state.
    fn peek(&mut self, k: VmId, j: ServerId) -> Score {
        match self {
            ScoreEngine::Delta { ev, evals, .. } => {
                *evals += 1;
                ev.peek_relocate(k, j).into()
            }
            ScoreEngine::Full {
                problem,
                current,
                total_rule_vms,
                work,
                evals,
            } => {
                *evals += 1;
                let old = current.server_of(k);
                current.assign(k, j);
                let (s, w) = full_score_with_work(problem, current, *total_rule_vms);
                *work += w;
                match old {
                    Some(o) => current.assign(k, o),
                    None => current.unassign(k),
                }
                s
            }
        }
    }

    /// Commits "relocate `k` to `j`".
    fn commit(&mut self, k: VmId, j: ServerId) {
        match self {
            ScoreEngine::Delta { ev, .. } => {
                ev.apply(k, j);
                ev.clear_history(); // accepted moves are never undone
            }
            ScoreEngine::Full { current, .. } => current.assign(k, j),
        }
    }

    /// `(delta_evals, full_evals, eval_work)` so far.
    fn stats(&self) -> (usize, usize, u64) {
        match self {
            ScoreEngine::Delta {
                ev,
                base_work,
                evals,
            } => (*evals, 0, ev.work() - base_work),
            ScoreEngine::Full { work, evals, .. } => (0, *evals, *work),
        }
    }
}

/// One full (tracker-rebuilding) score plus its analytic model-cell cost,
/// in the unit `DeltaEvaluator::work` defines (see its `full_eval_work`).
fn full_score_with_work(
    problem: &AllocationProblem,
    assignment: &Assignment,
    total_rule_vms: u64,
) -> (Score, u64) {
    let tracker = problem.tracker(assignment);
    let s = Score {
        violation: problem.check_with_tracker(assignment, &tracker).degree(),
        total_cost: problem.evaluate_with_tracker(assignment, &tracker).total(),
    };
    let (_, m, n, h) = problem.dims();
    let assigned = assignment.assigned_count();
    let active = tracker.active_servers();
    let mut w = (assigned * h + m * h + n + m + active * h + assigned) as u64 + total_rule_vms;
    if problem.previous().is_some() {
        w += n as u64;
    }
    (s, w)
}

/// Scores `(k, j)` and folds it into the running best candidate, honouring
/// the tabu list and the aspiration criterion.
fn consider_candidate(
    engine: &mut ScoreEngine<'_>,
    tabu: &TabuList,
    k: VmId,
    j: ServerId,
    best_score: &Score,
    best_cand: &mut Option<(VmId, ServerId, Score, bool)>,
    candidates_scanned: &mut usize,
) {
    *candidates_scanned += 1;
    let is_tabu = tabu.is_tabu(k, j);
    let s = engine.peek(k, j);
    let aspirated = is_tabu && s.better_than(best_score);
    if is_tabu && !aspirated {
        return;
    }
    let better = match best_cand {
        None => true,
        Some((_, _, cs, _)) => s.better_than(cs),
    };
    if better {
        *best_cand = Some((k, j, s, aspirated));
    }
}

/// Runs tabu search from `start`, relocating one VM per iteration.
///
/// Per iteration, the candidate set (random samples or the exhaustive
/// `n·m` scan, per [`TabuConfig::neighborhood`]) is scored incrementally;
/// the best non-tabu candidate (or a tabu one that beats the best known —
/// the aspiration criterion) is applied.
pub fn tabu_search(
    problem: &AllocationProblem,
    start: Assignment,
    config: &TabuConfig,
) -> TabuResult {
    let n = problem.n();
    let m = problem.m();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut tabu = TabuList::new(config.tenure);

    let mut engine = ScoreEngine::new(problem, start, config.scoring);
    let mut current_score = engine.score_current();
    let mut best = engine.current().clone();
    let mut best_score = current_score;
    let mut accepted = 0usize;
    let mut iterations = 0usize;
    let mut aspiration_hits = 0usize;
    let mut candidates_scanned = 0usize;

    let mut sp = cpo_obs::span!("tabu.search", vms = n, servers = m);

    if n == 0 || m < 2 {
        let (delta_evals, full_evals, eval_work) = engine.stats();
        return TabuResult {
            best,
            best_score,
            iterations,
            accepted_moves: accepted,
            aspiration_hits,
            candidates_scanned,
            delta_evals,
            full_evals,
            eval_work,
        };
    }

    // Dedupe buffer for sampled candidates: the same (vm, server) pair can
    // be drawn more than once per iteration; scoring it again cannot change
    // the selection (better_than is strict), so only the first draw is
    // scored. The RNG is still advanced per draw to keep trajectories
    // comparable across configurations.
    let mut seen: Vec<(VmId, ServerId)> = Vec::with_capacity(config.candidates);

    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut best_cand: Option<(VmId, ServerId, Score, bool)> = None;
        match config.neighborhood {
            Neighborhood::Sampled => {
                seen.clear();
                for _ in 0..config.candidates {
                    let k = VmId(rng.gen_range(0..n));
                    let j = ServerId(rng.gen_range(0..m));
                    if engine.server_of(k) == Some(j) {
                        continue;
                    }
                    if seen.contains(&(k, j)) {
                        continue;
                    }
                    seen.push((k, j));
                    consider_candidate(
                        &mut engine,
                        &tabu,
                        k,
                        j,
                        &best_score,
                        &mut best_cand,
                        &mut candidates_scanned,
                    );
                }
            }
            Neighborhood::Exhaustive => {
                for k in (0..n).map(VmId) {
                    for j in (0..m).map(ServerId) {
                        if engine.server_of(k) == Some(j) {
                            continue;
                        }
                        consider_candidate(
                            &mut engine,
                            &tabu,
                            k,
                            j,
                            &best_score,
                            &mut best_cand,
                            &mut candidates_scanned,
                        );
                    }
                }
            }
        }
        let Some((k, j, s, cand_aspirated)) = best_cand else {
            continue;
        };
        if cand_aspirated {
            aspiration_hits += 1;
        }
        if let Some(from) = engine.server_of(k) {
            tabu.push(TabuMove { vm: k, from });
        }
        engine.commit(k, j);
        current_score = s;
        accepted += 1;
        if current_score.better_than(&best_score) {
            best = engine.current().clone();
            best_score = current_score;
        }
        // Early exit once feasible and stagnating is handled by budget;
        // a perfect zero-cost solution cannot exist (opex > 0), so run on.
    }

    let (delta_evals, full_evals, eval_work) = engine.stats();
    sp.field("iterations", iterations)
        .field("accepted", accepted)
        .field("aspiration_hits", aspiration_hits);
    cpo_obs::counter_add("tabu.iterations", iterations as u64);
    cpo_obs::counter_add("tabu.accepted_moves", accepted as u64);
    cpo_obs::counter_add("tabu.aspiration_hits", aspiration_hits as u64);
    cpo_obs::counter_add("tabu.candidates_scanned", candidates_scanned as u64);
    cpo_obs::counter_add("tabu.delta_evals", delta_evals as u64);
    cpo_obs::counter_add("tabu.full_evals", full_evals as u64);
    TabuResult {
        best,
        best_score,
        iterations,
        accepted_moves: accepted,
        aspiration_hits,
        candidates_scanned,
        delta_evals,
        full_evals,
        eval_work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem(servers: usize, vms: usize) -> AllocationProblem {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(servers))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..vms {
            batch.push_request(vec![vm_spec(4.0, 4096.0, 50.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn score_orders_by_violation_then_cost() {
        let a = Score {
            violation: 0.0,
            total_cost: 100.0,
        };
        let b = Score {
            violation: 1.0,
            total_cost: 1.0,
        };
        let c = Score {
            violation: 0.0,
            total_cost: 50.0,
        };
        assert!(a.better_than(&b));
        assert!(c.better_than(&a));
        assert!(!b.better_than(&c));
    }

    #[test]
    fn search_reaches_feasibility_from_overload() {
        // Ten 4-vCPU VMs piled on one 28.8-effective-vCPU server: overloaded.
        let p = problem(4, 10);
        let mut start = Assignment::unassigned(10);
        for k in 0..10 {
            start.assign(VmId(k), ServerId(0));
        }
        assert!(!p.is_feasible(&start));
        let result = tabu_search(&p, start, &TabuConfig::default());
        assert_eq!(
            result.best_score.violation, 0.0,
            "search must reach feasibility"
        );
        assert!(p.is_feasible(&result.best));
        assert!(result.accepted_moves > 0);
        assert!(result.delta_evals > 0);
        assert_eq!(result.full_evals, 0);
    }

    #[test]
    fn search_reduces_cost_of_feasible_start() {
        // Spread VMs over expensive many servers; packing is cheaper.
        let p = problem(6, 6);
        let mut start = Assignment::unassigned(6);
        for k in 0..6 {
            start.assign(VmId(k), ServerId(k));
        }
        let initial = score(&p, &start);
        let result = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 800,
                ..Default::default()
            },
        );
        assert!(
            result.best_score.total_cost < initial.total_cost,
            "tabu should consolidate: {} -> {}",
            initial.total_cost,
            result.best_score.total_cost
        );
        assert_eq!(result.best_score.violation, 0.0);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let p = problem(4, 8);
        let start = Assignment::from_genes(&[0; 8]);
        let r1 = tabu_search(&p, start.clone(), &TabuConfig::default());
        let r2 = tabu_search(&p, start, &TabuConfig::default());
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.accepted_moves, r2.accepted_moves);
        assert_eq!(r1.candidates_scanned, r2.candidates_scanned);
        assert_eq!(r1.eval_work, r2.eval_work);
    }

    #[test]
    fn delta_and_full_scoring_walk_the_same_trajectory() {
        // Delta scores are bit-identical to full scores, so every
        // candidate comparison — and therefore the whole search — must
        // agree between the two modes.
        let p = problem(5, 12);
        let mut start = Assignment::unassigned(12);
        for k in 0..12 {
            start.assign(VmId(k), ServerId(0));
        }
        let mut runs = Vec::new();
        for scoring in [Scoring::Delta, Scoring::Full] {
            runs.push(tabu_search(
                &p,
                start.clone(),
                &TabuConfig {
                    max_iterations: 120,
                    scoring,
                    ..Default::default()
                },
            ));
        }
        let (d, f) = (&runs[0], &runs[1]);
        assert_eq!(d.best, f.best);
        assert_eq!(
            d.best_score.violation.to_bits(),
            f.best_score.violation.to_bits()
        );
        assert_eq!(
            d.best_score.total_cost.to_bits(),
            f.best_score.total_cost.to_bits()
        );
        assert_eq!(d.accepted_moves, f.accepted_moves);
        assert_eq!(d.aspiration_hits, f.aspiration_hits);
        assert_eq!(d.candidates_scanned, f.candidates_scanned);
        assert!(d.full_evals == 0 && f.delta_evals == 0);
        assert!(
            d.eval_work < f.eval_work,
            "delta work {} must undercut full work {}",
            d.eval_work,
            f.eval_work
        );
    }

    #[test]
    fn exhaustive_neighborhood_is_deterministic_and_ignores_the_seed() {
        let p = problem(4, 8);
        let start = Assignment::from_genes(&[0; 8]);
        let cfg = |seed| TabuConfig {
            max_iterations: 40,
            neighborhood: Neighborhood::Exhaustive,
            seed,
            ..Default::default()
        };
        let r1 = tabu_search(&p, start.clone(), &cfg(0));
        let r2 = tabu_search(&p, start.clone(), &cfg(12345));
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.candidates_scanned, r2.candidates_scanned);
        // Full scan considers every non-noop pair each iteration.
        assert!(r1.candidates_scanned >= 40 * (8 * 3));
        assert_eq!(r1.best_score.violation, 0.0);
    }

    #[test]
    fn empty_problem_is_a_noop() {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(1))],
        );
        let p = AllocationProblem::new(infra, RequestBatch::new(), None);
        let r = tabu_search(&p, Assignment::unassigned(0), &TabuConfig::default());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn best_never_worse_than_start() {
        let p = problem(5, 10);
        let start = Assignment::from_genes(&[0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        let s0 = score(&p, &start);
        let r = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 100,
                ..Default::default()
            },
        );
        assert!(
            r.best_score.better_than(&s0) || r.best_score == s0,
            "tabu must never return worse than its start"
        );
    }
}
