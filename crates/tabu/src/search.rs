//! A standalone tabu-search optimiser over assignments (Glover 1986) —
//! the "local heuristic search procedure (guided) to explore the solution
//! space beyond local optimality by moving virtual machines on different
//! servers" the paper embeds in its hybrid; usable on its own for
//! ablations and as a post-optimisation polish.

use crate::list::{TabuList, TabuMove};
use cpo_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tabu-search configuration.
#[derive(Clone, Copy, Debug)]
pub struct TabuConfig {
    /// Tabu tenure.
    pub tenure: usize,
    /// Iteration budget (one move per iteration).
    pub max_iterations: usize,
    /// Candidate moves sampled per iteration.
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TabuConfig {
    fn default() -> Self {
        Self {
            tenure: 24,
            max_iterations: 500,
            candidates: 32,
            seed: 0,
        }
    }
}

/// Search quality of an assignment: infeasibility first, then Eq. 15 total.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Score {
    /// Total constraint-violation degree (0 = feasible).
    pub violation: f64,
    /// Aggregate objective (Eq. 15 equal weights).
    pub total_cost: f64,
}

impl Score {
    /// Lexicographic comparison: less violating wins; ties by cost.
    pub fn better_than(&self, other: &Score) -> bool {
        if self.violation != other.violation {
            return self.violation < other.violation;
        }
        self.total_cost < other.total_cost
    }
}

/// Scores an assignment.
pub fn score(problem: &AllocationProblem, assignment: &Assignment) -> Score {
    let report = problem.check(assignment);
    Score {
        violation: report.degree(),
        total_cost: problem.evaluate(assignment).total(),
    }
}

/// Result of a tabu-search run.
#[derive(Clone, Debug)]
pub struct TabuResult {
    /// Best assignment found.
    pub best: Assignment,
    /// Score of the best assignment.
    pub best_score: Score,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Moves accepted.
    pub accepted_moves: usize,
    /// Tabu moves accepted via the aspiration criterion.
    pub aspiration_hits: usize,
    /// Candidate relocations scored across all iterations.
    pub candidates_scanned: usize,
}

/// Runs tabu search from `start`, relocating one VM per iteration.
///
/// Per iteration, `config.candidates` random (vm, server) relocations are
/// scored; the best non-tabu candidate (or a tabu one that beats the best
/// known — the aspiration criterion) is applied.
pub fn tabu_search(
    problem: &AllocationProblem,
    start: Assignment,
    config: &TabuConfig,
) -> TabuResult {
    let n = problem.n();
    let m = problem.m();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut tabu = TabuList::new(config.tenure);

    let mut current = start;
    let mut current_score = score(problem, &current);
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut accepted = 0usize;
    let mut iterations = 0usize;
    let mut aspiration_hits = 0usize;
    let mut candidates_scanned = 0usize;

    let mut sp = cpo_obs::span!("tabu.search", vms = n, servers = m);

    if n == 0 || m < 2 {
        return TabuResult {
            best,
            best_score,
            iterations,
            accepted_moves: accepted,
            aspiration_hits,
            candidates_scanned,
        };
    }

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Sample candidate relocations.
        let mut best_cand: Option<(VmId, ServerId, Score, bool)> = None;
        for _ in 0..config.candidates {
            let k = VmId(rng.gen_range(0..n));
            let j = ServerId(rng.gen_range(0..m));
            if current.server_of(k) == Some(j) {
                continue;
            }
            candidates_scanned += 1;
            let is_tabu = tabu.is_tabu(k, j);
            let old = current.server_of(k);
            current.assign(k, j);
            let s = score(problem, &current);
            match old {
                Some(o) => current.assign(k, o),
                None => current.unassign(k),
            }
            let aspirated = is_tabu && s.better_than(&best_score);
            if is_tabu && !aspirated {
                continue;
            }
            let better = match &best_cand {
                None => true,
                Some((_, _, cs, _)) => s.better_than(cs),
            };
            if better {
                best_cand = Some((k, j, s, aspirated));
            }
        }
        let Some((k, j, s, cand_aspirated)) = best_cand else {
            continue;
        };
        if cand_aspirated {
            aspiration_hits += 1;
        }
        if let Some(from) = current.server_of(k) {
            tabu.push(TabuMove { vm: k, from });
        }
        current.assign(k, j);
        current_score = s;
        accepted += 1;
        if current_score.better_than(&best_score) {
            best = current.clone();
            best_score = current_score;
        }
        // Early exit once feasible and stagnating is handled by budget;
        // a perfect zero-cost solution cannot exist (opex > 0), so run on.
    }

    sp.field("iterations", iterations)
        .field("accepted", accepted)
        .field("aspiration_hits", aspiration_hits);
    cpo_obs::counter_add("tabu.iterations", iterations as u64);
    cpo_obs::counter_add("tabu.accepted_moves", accepted as u64);
    cpo_obs::counter_add("tabu.aspiration_hits", aspiration_hits as u64);
    cpo_obs::counter_add("tabu.candidates_scanned", candidates_scanned as u64);
    TabuResult {
        best,
        best_score,
        iterations,
        accepted_moves: accepted,
        aspiration_hits,
        candidates_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem(servers: usize, vms: usize) -> AllocationProblem {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(servers))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..vms {
            batch.push_request(vec![vm_spec(4.0, 4096.0, 50.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn score_orders_by_violation_then_cost() {
        let a = Score {
            violation: 0.0,
            total_cost: 100.0,
        };
        let b = Score {
            violation: 1.0,
            total_cost: 1.0,
        };
        let c = Score {
            violation: 0.0,
            total_cost: 50.0,
        };
        assert!(a.better_than(&b));
        assert!(c.better_than(&a));
        assert!(!b.better_than(&c));
    }

    #[test]
    fn search_reaches_feasibility_from_overload() {
        // Ten 4-vCPU VMs piled on one 28.8-effective-vCPU server: overloaded.
        let p = problem(4, 10);
        let mut start = Assignment::unassigned(10);
        for k in 0..10 {
            start.assign(VmId(k), ServerId(0));
        }
        assert!(!p.is_feasible(&start));
        let result = tabu_search(&p, start, &TabuConfig::default());
        assert_eq!(
            result.best_score.violation, 0.0,
            "search must reach feasibility"
        );
        assert!(p.is_feasible(&result.best));
        assert!(result.accepted_moves > 0);
    }

    #[test]
    fn search_reduces_cost_of_feasible_start() {
        // Spread VMs over expensive many servers; packing is cheaper.
        let p = problem(6, 6);
        let mut start = Assignment::unassigned(6);
        for k in 0..6 {
            start.assign(VmId(k), ServerId(k));
        }
        let initial = score(&p, &start);
        let result = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 800,
                ..Default::default()
            },
        );
        assert!(
            result.best_score.total_cost < initial.total_cost,
            "tabu should consolidate: {} -> {}",
            initial.total_cost,
            result.best_score.total_cost
        );
        assert_eq!(result.best_score.violation, 0.0);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let p = problem(4, 8);
        let start = Assignment::from_genes(&[0; 8]);
        let r1 = tabu_search(&p, start.clone(), &TabuConfig::default());
        let r2 = tabu_search(&p, start, &TabuConfig::default());
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.accepted_moves, r2.accepted_moves);
    }

    #[test]
    fn empty_problem_is_a_noop() {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(1))],
        );
        let p = AllocationProblem::new(infra, RequestBatch::new(), None);
        let r = tabu_search(&p, Assignment::unassigned(0), &TabuConfig::default());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn best_never_worse_than_start() {
        let p = problem(5, 10);
        let start = Assignment::from_genes(&[0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        let s0 = score(&p, &start);
        let r = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 100,
                ..Default::default()
            },
        );
        assert!(
            r.best_score.better_than(&s0) || r.best_score == s0,
            "tabu must never return worse than its start"
        );
    }
}
