//! A standalone tabu-search optimiser over assignments (Glover 1986) —
//! the "local heuristic search procedure (guided) to explore the solution
//! space beyond local optimality by moving virtual machines on different
//! servers" the paper embeds in its hybrid; usable on its own for
//! ablations and as a post-optimisation polish.
//!
//! Candidate relocations are scored through
//! [`DeltaEvaluator`](cpo_model::delta::DeltaEvaluator) by default —
//! O(occupancy·h + rules(vm)) per candidate instead of a from-scratch
//! O(n·h + m·h + rules) recompute — with [`Scoring::Full`] kept as the
//! differential oracle. Delta scores are bit-identical to full scores, so
//! the two modes walk the exact same trajectory (pinned by
//! `tests/delta_differential.rs`).
//!
//! Deterministic scans ([`Neighborhood::Exhaustive`] and
//! [`Neighborhood::Candidates`]) can additionally be partitioned across
//! [`TabuConfig::threads`] scan workers (see [`crate::parallel`]); the
//! partitioning is *logical* — the trajectory and every `TabuResult`
//! counter are bit-identical at any thread count (pinned by
//! `tests/parallel_search_differential.rs`) — and the search is
//! *anytime*: [`TabuConfig::deadline`] cuts it at the next iteration
//! boundary and the best incumbent so far is returned.

use crate::list::{TabuList, TabuMove};
use crate::parallel::{Candidate, ScanSet, ScanWorkers};
use cpo_model::deadline::Deadline;
use cpo_model::delta::{DeltaEvaluator, MoveScore};
use cpo_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How candidate relocations are scored.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scoring {
    /// Incremental delta evaluation (the fast path and the default).
    #[default]
    Delta,
    /// From-scratch check + evaluate per candidate, sharing one
    /// [`LoadTracker`] between the two — the slow-path oracle the
    /// differential tests compare against.
    Full,
}

/// How the per-iteration candidate set is generated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Neighborhood {
    /// `candidates` random `(vm, server)` draws per iteration (the
    /// paper's sampling scheme).
    #[default]
    Sampled,
    /// Deterministic scan of all `n·m` relocations per iteration — no
    /// RNG involved; affordable now that scoring is incremental.
    Exhaustive,
    /// Deterministic *candidate-list* scan: only pairs the evaluator's
    /// maintained caches implicate (faulty VMs while infeasible, the
    /// least-occupied quartile of active servers once feasible — see
    /// `candidate_pairs`) are scored, with a full exhaustive scan every
    /// `refresh` iterations (and whenever the list comes back empty) so
    /// the restricted neighborhood cannot hide improving moves forever.
    Candidates {
        /// Period of the exhaustive refresh scan, in iterations
        /// (clamped to ≥ 1; `1` degenerates to [`Self::Exhaustive`]).
        refresh: usize,
    },
}

/// Tabu-search configuration.
#[derive(Clone, Copy, Debug)]
pub struct TabuConfig {
    /// Tabu tenure.
    pub tenure: usize,
    /// Iteration budget (one move per iteration).
    pub max_iterations: usize,
    /// Candidate moves sampled per iteration (ignored by
    /// [`Neighborhood::Exhaustive`]).
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
    /// Candidate scoring mode.
    pub scoring: Scoring,
    /// Candidate generation mode.
    pub neighborhood: Neighborhood,
    /// Scan partitions for the deterministic neighborhoods under
    /// [`Scoring::Delta`] (`0`/`1` = serial). A *logical* partitioning:
    /// the trajectory and all counters are bit-identical at any value,
    /// while physical parallelism is whatever the machine provides.
    /// [`Neighborhood::Sampled`] stays serial (its RNG is sequential)
    /// and so does [`Scoring::Full`] (it is the differential oracle).
    pub threads: usize,
    /// Wall-clock bound checked at iteration boundaries; on expiry the
    /// search stops and returns the best incumbent found so far
    /// ([`TabuResult::deadline_hit`] is set). [`Deadline::never`]
    /// (the default) leaves the trajectory untouched.
    pub deadline: Deadline,
}

impl Default for TabuConfig {
    fn default() -> Self {
        Self {
            tenure: 24,
            max_iterations: 500,
            candidates: 32,
            seed: 0,
            scoring: Scoring::Delta,
            neighborhood: Neighborhood::Sampled,
            threads: 1,
            deadline: Deadline::never(),
        }
    }
}

/// Search quality of an assignment: infeasibility first, then Eq. 15 total.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Score {
    /// Total constraint-violation degree (0 = feasible).
    pub violation: f64,
    /// Aggregate objective (Eq. 15 equal weights).
    pub total_cost: f64,
}

impl Score {
    /// Lexicographic comparison: less violating wins; ties by cost.
    pub fn better_than(&self, other: &Score) -> bool {
        if self.violation != other.violation {
            return self.violation < other.violation;
        }
        self.total_cost < other.total_cost
    }
}

impl From<MoveScore> for Score {
    fn from(ms: MoveScore) -> Self {
        Score {
            violation: ms.violation,
            total_cost: ms.total_cost(),
        }
    }
}

/// Scores an assignment from scratch, building ONE tracker shared by the
/// constraint check and the objective evaluation (each used to build its
/// own — a silent 2× on the hot path).
pub fn score(problem: &AllocationProblem, assignment: &Assignment) -> Score {
    let tracker = problem.tracker(assignment);
    Score {
        violation: problem.check_with_tracker(assignment, &tracker).degree(),
        total_cost: problem.evaluate_with_tracker(assignment, &tracker).total(),
    }
}

/// Result of a tabu-search run.
#[derive(Clone, Debug)]
pub struct TabuResult {
    /// Best assignment found.
    pub best: Assignment,
    /// Score of the best assignment.
    pub best_score: Score,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Moves accepted.
    pub accepted_moves: usize,
    /// Tabu moves accepted via the aspiration criterion.
    pub aspiration_hits: usize,
    /// Distinct candidate relocations scored across all iterations
    /// (duplicate draws within an iteration are deduplicated).
    pub candidates_scanned: usize,
    /// Candidates scored through the delta evaluator.
    pub delta_evals: usize,
    /// Candidates scored by full recompute.
    pub full_evals: usize,
    /// Heavy model-cell operations spent scoring (the unit
    /// [`DeltaEvaluator::work`] defines) — the quantity the ≥5×
    /// delta-vs-full regression test pins.
    pub eval_work: u64,
    /// `true` when [`TabuConfig::deadline`] expired before the
    /// iteration budget did; `best` is then the anytime incumbent.
    pub deadline_hit: bool,
}

/// Callback surface for anytime consumers of the search: the driver
/// reports every incumbent improvement as it happens, so a caller racing
/// a deadline can harvest the trajectory without waiting for the run to
/// finish. `tests/parallel_search_differential.rs` uses it to prove the
/// incumbent sequence is strictly improving (anytime monotonicity).
pub trait SearchObserver {
    /// The incumbent improved at `iteration` (`0` reports the starting
    /// assignment's score before any move).
    fn on_incumbent(&mut self, iteration: usize, score: Score);
}

/// The do-nothing observer behind plain [`tabu_search`].
pub struct NoObserver;

impl SearchObserver for NoObserver {
    fn on_incumbent(&mut self, _iteration: usize, _score: Score) {}
}

/// The two scoring backends behind one interface. `Delta` owns the current
/// assignment inside the evaluator; `Full` carries it alongside.
enum ScoreEngine<'p> {
    Delta {
        ev: Box<DeltaEvaluator<'p>>,
        /// Work already booked when the engine was built (the initial
        /// state construction), excluded from `eval_work`.
        base_work: u64,
        evals: usize,
    },
    Full {
        problem: &'p AllocationProblem,
        current: Assignment,
        /// Σ rule member counts, for the analytic per-eval work cost.
        total_rule_vms: u64,
        work: u64,
        evals: usize,
    },
}

impl<'p> ScoreEngine<'p> {
    fn new(problem: &'p AllocationProblem, start: Assignment, scoring: Scoring) -> Self {
        match scoring {
            Scoring::Delta => {
                let ev = Box::new(DeltaEvaluator::new(problem, start));
                let base_work = ev.work();
                ScoreEngine::Delta {
                    ev,
                    base_work,
                    evals: 0,
                }
            }
            Scoring::Full => {
                let total_rule_vms = problem
                    .batch()
                    .requests()
                    .iter()
                    .flat_map(|r| r.rules.iter())
                    .map(|rule| rule.vms().len() as u64)
                    .sum();
                ScoreEngine::Full {
                    problem,
                    current: start,
                    total_rule_vms,
                    work: 0,
                    evals: 0,
                }
            }
        }
    }

    fn server_of(&self, k: VmId) -> Option<ServerId> {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.assignment().server_of(k),
            ScoreEngine::Full { current, .. } => current.server_of(k),
        }
    }

    fn current(&self) -> &Assignment {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.assignment(),
            ScoreEngine::Full { current, .. } => current,
        }
    }

    /// Scores the current assignment (start-of-search baseline).
    fn score_current(&mut self) -> Score {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.score().into(),
            ScoreEngine::Full {
                problem,
                current,
                total_rule_vms,
                work,
                evals,
            } => {
                *evals += 1;
                let (s, w) = full_score_with_work(problem, current, *total_rule_vms);
                *work += w;
                s
            }
        }
    }

    /// Scores "relocate `k` to `j`" without changing the current state.
    fn peek(&mut self, k: VmId, j: ServerId) -> Score {
        match self {
            ScoreEngine::Delta { ev, evals, .. } => {
                *evals += 1;
                ev.peek_relocate(k, j).into()
            }
            ScoreEngine::Full {
                problem,
                current,
                total_rule_vms,
                work,
                evals,
            } => {
                *evals += 1;
                let old = current.server_of(k);
                current.assign(k, j);
                let (s, w) = full_score_with_work(problem, current, *total_rule_vms);
                *work += w;
                match old {
                    Some(o) => current.assign(k, o),
                    None => current.unassign(k),
                }
                s
            }
        }
    }

    /// Commits "relocate `k` to `j`".
    fn commit(&mut self, k: VmId, j: ServerId) {
        match self {
            ScoreEngine::Delta { ev, .. } => {
                ev.apply(k, j);
                ev.clear_history(); // accepted moves are never undone
            }
            ScoreEngine::Full { current, .. } => current.assign(k, j),
        }
    }

    /// `(delta_evals, full_evals, eval_work)` so far.
    fn stats(&self) -> (usize, usize, u64) {
        match self {
            ScoreEngine::Delta {
                ev,
                base_work,
                evals,
            } => (*evals, 0, ev.work() - base_work),
            ScoreEngine::Full { work, evals, .. } => (0, *evals, *work),
        }
    }

    /// VMs implicated in the current violations. Both variants return
    /// the same ascending-id set (an over-`0..n` flag scan in each), so
    /// candidate lists built from it are identical across scoring modes
    /// — the property the candidate-list differential test relies on.
    fn faulty_vms(&self) -> Vec<VmId> {
        match self {
            ScoreEngine::Delta { ev, .. } => ev.faulty_vms(),
            ScoreEngine::Full {
                problem, current, ..
            } => crate::repair::faulty_vms(problem, current),
        }
    }

    /// Per-server VM counts. `Delta` reads the maintained occupant
    /// lists in O(m); `Full` rebuilds the histogram from the assignment
    /// in O(n + m) — same values either way.
    fn occupancies(&self) -> Vec<usize> {
        match self {
            ScoreEngine::Delta { ev, .. } => {
                let m = ev.problem().m();
                (0..m).map(|j| ev.occupancy(ServerId(j))).collect()
            }
            ScoreEngine::Full {
                problem, current, ..
            } => {
                let mut occ = vec![0usize; problem.m()];
                for k in (0..problem.n()).map(VmId) {
                    if let Some(j) = current.server_of(k) {
                        occ[j.index()] += 1;
                    }
                }
                occ
            }
        }
    }
}

/// One full (tracker-rebuilding) score plus its analytic model-cell cost,
/// in the unit `DeltaEvaluator::work` defines (see its `full_eval_work`).
fn full_score_with_work(
    problem: &AllocationProblem,
    assignment: &Assignment,
    total_rule_vms: u64,
) -> (Score, u64) {
    let tracker = problem.tracker(assignment);
    let s = Score {
        violation: problem.check_with_tracker(assignment, &tracker).degree(),
        total_cost: problem.evaluate_with_tracker(assignment, &tracker).total(),
    };
    let (_, m, n, h) = problem.dims();
    let assigned = assignment.assigned_count();
    let active = tracker.active_servers();
    let mut w = (assigned * h + m * h + n + m + active * h + assigned) as u64 + total_rule_vms;
    if problem.previous().is_some() {
        w += n as u64;
    }
    (s, w)
}

/// Scores `(k, j)` and folds it into the running best candidate, honouring
/// the tabu list and the aspiration criterion.
fn consider_candidate(
    engine: &mut ScoreEngine<'_>,
    tabu: &TabuList,
    k: VmId,
    j: ServerId,
    best_score: &Score,
    best_cand: &mut Option<(VmId, ServerId, Score, bool)>,
    candidates_scanned: &mut usize,
) {
    *candidates_scanned += 1;
    let is_tabu = tabu.is_tabu(k, j);
    let s = engine.peek(k, j);
    let aspirated = is_tabu && s.better_than(best_score);
    if is_tabu && !aspirated {
        return;
    }
    let better = match best_cand {
        None => true,
        Some((_, _, cs, _)) => s.better_than(cs),
    };
    if better {
        *best_cand = Some((k, j, s, aspirated));
    }
}

/// Builds one iteration's candidate list from the engine's maintained
/// state, in canonical (vm-major, server-minor ascending) order:
///
/// * **infeasible** (`violation > 0`) — only relocations of implicated
///   VMs can reduce the violation, so sources are [`ScoreEngine::faulty_vms`]
///   and targets are *all* servers;
/// * **feasible** — consolidation: sources are the VMs on the
///   least-occupied quartile (`ceil(active/4)`, ties by server id) of
///   active servers, targets the active servers — draining light hosts
///   into the rest is where the Eq. 15 cost decreases live.
///
/// No-op pairs (`server_of(k) == j`) may appear; every scan skips them
/// before scoring, so they cost nothing and never count. An empty list
/// makes the caller fall back to a full exhaustive scan this iteration.
fn candidate_pairs(
    engine: &ScoreEngine<'_>,
    current_score: &Score,
    n: usize,
    m: usize,
) -> Vec<(VmId, ServerId)> {
    if current_score.violation > 0.0 {
        let sources = engine.faulty_vms();
        let mut pairs = Vec::with_capacity(sources.len() * m);
        for &k in &sources {
            for j in (0..m).map(ServerId) {
                pairs.push((k, j));
            }
        }
        return pairs;
    }
    let occ = engine.occupancies();
    let active: Vec<ServerId> = (0..m)
        .map(ServerId)
        .filter(|j| occ[j.index()] > 0)
        .collect();
    if active.len() < 2 {
        return Vec::new();
    }
    let mut by_load = active.clone();
    by_load.sort_by_key(|j| (occ[j.index()], j.index()));
    let mut is_drain = vec![false; m];
    for &j in &by_load[..active.len().div_ceil(4)] {
        is_drain[j.index()] = true;
    }
    let mut pairs = Vec::new();
    for k in (0..n).map(VmId) {
        if let Some(s) = engine.server_of(k) {
            if is_drain[s.index()] {
                for &j in &active {
                    pairs.push((k, j));
                }
            }
        }
    }
    pairs
}

/// Serially scans a [`ScanSet`] through the engine — the single-thread
/// counterpart of [`ScanWorkers::scan`], sharing `consider_candidate`
/// with the sampled path.
fn scan_set_serial(
    engine: &mut ScoreEngine<'_>,
    tabu: &TabuList,
    set: &ScanSet<'_>,
    best_score: &Score,
    best_cand: &mut Option<Candidate>,
    candidates_scanned: &mut usize,
) {
    for idx in 0..set.len() {
        let (k, j) = set.pair(idx);
        if engine.server_of(k) == Some(j) {
            continue;
        }
        consider_candidate(
            engine,
            tabu,
            k,
            j,
            best_score,
            best_cand,
            candidates_scanned,
        );
    }
}

/// Runs tabu search from `start`, relocating one VM per iteration.
///
/// Per iteration, the candidate set (random samples, the exhaustive
/// `n·m` scan, or a cache-driven candidate list, per
/// [`TabuConfig::neighborhood`]) is scored incrementally; the best
/// non-tabu candidate (or a tabu one that beats the best known — the
/// aspiration criterion) is applied.
pub fn tabu_search(
    problem: &AllocationProblem,
    start: Assignment,
    config: &TabuConfig,
) -> TabuResult {
    tabu_search_observed(problem, start, config, &mut NoObserver)
}

/// [`tabu_search`] with an incumbent-reporting [`SearchObserver`] — the
/// anytime entry point.
pub fn tabu_search_observed(
    problem: &AllocationProblem,
    start: Assignment,
    config: &TabuConfig,
    observer: &mut dyn SearchObserver,
) -> TabuResult {
    let n = problem.n();
    let m = problem.m();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut tabu = TabuList::new(config.tenure);

    let mut engine = ScoreEngine::new(problem, start, config.scoring);
    let mut current_score = engine.score_current();
    let mut best = engine.current().clone();
    let mut best_score = current_score;
    let mut accepted = 0usize;
    let mut iterations = 0usize;
    let mut aspiration_hits = 0usize;
    let mut candidates_scanned = 0usize;
    let mut deadline_hit = false;
    // Scan work done by parallel workers, folded into the engine totals
    // at the end (their sync commits are deliberately excluded — see
    // `ScanWorkers::commit`).
    let mut scan_evals_extra = 0usize;
    let mut scan_work_extra = 0u64;

    let mut sp = cpo_obs::span!("tabu.search", vms = n, servers = m);

    observer.on_incumbent(0, best_score);

    if n == 0 || m < 2 {
        let (delta_evals, full_evals, eval_work) = engine.stats();
        return TabuResult {
            best,
            best_score,
            iterations,
            accepted_moves: accepted,
            aspiration_hits,
            candidates_scanned,
            delta_evals,
            full_evals,
            eval_work,
            deadline_hit,
        };
    }

    // The scan-worker team exists only where partitioning is sound:
    // deterministic neighborhoods under delta scoring. Sampled draws its
    // candidates from a sequential RNG and Full is the differential
    // oracle — both keep the single-engine path.
    let workers = (config.threads > 1
        && config.scoring == Scoring::Delta
        && !matches!(config.neighborhood, Neighborhood::Sampled))
    .then(|| ScanWorkers::new(problem, engine.current(), config.threads));

    // Dedupe buffer for sampled candidates: the same (vm, server) pair can
    // be drawn more than once per iteration; scoring it again cannot change
    // the selection (better_than is strict), so only the first draw is
    // scored. The RNG is still advanced per draw to keep trajectories
    // comparable across configurations.
    let mut seen: Vec<(VmId, ServerId)> = Vec::with_capacity(config.candidates);
    let mut pairs: Vec<(VmId, ServerId)> = Vec::new();

    for _ in 0..config.max_iterations {
        if config.deadline.expired() {
            deadline_hit = true;
            break;
        }
        iterations += 1;
        let mut best_cand: Option<Candidate> = None;
        // `None` = sampled path; `Some(set)` = deterministic scan,
        // dispatched to the worker team when one exists.
        let scan_set = match config.neighborhood {
            Neighborhood::Sampled => None,
            Neighborhood::Exhaustive => Some(ScanSet::Flat { n, m }),
            Neighborhood::Candidates { refresh } => {
                let full_scan = (iterations - 1).is_multiple_of(refresh.max(1));
                if !full_scan {
                    pairs = candidate_pairs(&engine, &current_score, n, m);
                }
                if full_scan || pairs.is_empty() {
                    Some(ScanSet::Flat { n, m })
                } else {
                    Some(ScanSet::Pairs(&pairs))
                }
            }
        };
        match scan_set {
            None => {
                seen.clear();
                for _ in 0..config.candidates {
                    let k = VmId(rng.gen_range(0..n));
                    let j = ServerId(rng.gen_range(0..m));
                    if engine.server_of(k) == Some(j) {
                        continue;
                    }
                    if seen.contains(&(k, j)) {
                        continue;
                    }
                    seen.push((k, j));
                    consider_candidate(
                        &mut engine,
                        &tabu,
                        k,
                        j,
                        &best_score,
                        &mut best_cand,
                        &mut candidates_scanned,
                    );
                }
            }
            Some(set) => {
                if let Some(team) = workers.as_ref() {
                    let out = team.scan(&set, &tabu, best_score);
                    candidates_scanned += out.scanned;
                    scan_evals_extra += out.evals;
                    scan_work_extra += out.work;
                    best_cand = out.best;
                } else {
                    scan_set_serial(
                        &mut engine,
                        &tabu,
                        &set,
                        &best_score,
                        &mut best_cand,
                        &mut candidates_scanned,
                    );
                }
            }
        }
        let Some((k, j, s, cand_aspirated)) = best_cand else {
            continue;
        };
        if cand_aspirated {
            aspiration_hits += 1;
        }
        if let Some(from) = engine.server_of(k) {
            tabu.push(TabuMove { vm: k, from });
        }
        engine.commit(k, j);
        if let Some(team) = workers.as_ref() {
            team.commit(k, j);
        }
        current_score = s;
        accepted += 1;
        if current_score.better_than(&best_score) {
            best = engine.current().clone();
            best_score = current_score;
            observer.on_incumbent(iterations, best_score);
        }
        // Early exit once feasible and stagnating is handled by budget;
        // a perfect zero-cost solution cannot exist (opex > 0), so run on.
    }

    if let Some(team) = workers {
        let slots = team.len();
        let pool = team.into_pool();
        debug_assert_eq!(pool.idle(), slots, "every scan worker checked back in");
    }

    let (engine_delta_evals, full_evals, engine_work) = engine.stats();
    let delta_evals = engine_delta_evals + scan_evals_extra;
    let eval_work = engine_work + scan_work_extra;
    sp.field("iterations", iterations)
        .field("accepted", accepted)
        .field("aspiration_hits", aspiration_hits);
    cpo_obs::counter_add("tabu.iterations", iterations as u64);
    cpo_obs::counter_add("tabu.accepted_moves", accepted as u64);
    cpo_obs::counter_add("tabu.aspiration_hits", aspiration_hits as u64);
    cpo_obs::counter_add("tabu.candidates_scanned", candidates_scanned as u64);
    cpo_obs::counter_add("tabu.delta_evals", delta_evals as u64);
    cpo_obs::counter_add("tabu.full_evals", full_evals as u64);
    cpo_obs::counter_add("tabu.deadline_hits", deadline_hit as u64);
    TabuResult {
        best,
        best_score,
        iterations,
        accepted_moves: accepted,
        aspiration_hits,
        candidates_scanned,
        delta_evals,
        full_evals,
        eval_work,
        deadline_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem(servers: usize, vms: usize) -> AllocationProblem {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(servers))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..vms {
            batch.push_request(vec![vm_spec(4.0, 4096.0, 50.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn score_orders_by_violation_then_cost() {
        let a = Score {
            violation: 0.0,
            total_cost: 100.0,
        };
        let b = Score {
            violation: 1.0,
            total_cost: 1.0,
        };
        let c = Score {
            violation: 0.0,
            total_cost: 50.0,
        };
        assert!(a.better_than(&b));
        assert!(c.better_than(&a));
        assert!(!b.better_than(&c));
    }

    #[test]
    fn search_reaches_feasibility_from_overload() {
        // Ten 4-vCPU VMs piled on one 28.8-effective-vCPU server: overloaded.
        let p = problem(4, 10);
        let mut start = Assignment::unassigned(10);
        for k in 0..10 {
            start.assign(VmId(k), ServerId(0));
        }
        assert!(!p.is_feasible(&start));
        let result = tabu_search(&p, start, &TabuConfig::default());
        assert_eq!(
            result.best_score.violation, 0.0,
            "search must reach feasibility"
        );
        assert!(p.is_feasible(&result.best));
        assert!(result.accepted_moves > 0);
        assert!(result.delta_evals > 0);
        assert_eq!(result.full_evals, 0);
    }

    #[test]
    fn search_reduces_cost_of_feasible_start() {
        // Spread VMs over expensive many servers; packing is cheaper.
        let p = problem(6, 6);
        let mut start = Assignment::unassigned(6);
        for k in 0..6 {
            start.assign(VmId(k), ServerId(k));
        }
        let initial = score(&p, &start);
        let result = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 800,
                ..Default::default()
            },
        );
        assert!(
            result.best_score.total_cost < initial.total_cost,
            "tabu should consolidate: {} -> {}",
            initial.total_cost,
            result.best_score.total_cost
        );
        assert_eq!(result.best_score.violation, 0.0);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let p = problem(4, 8);
        let start = Assignment::from_genes(&[0; 8]);
        let r1 = tabu_search(&p, start.clone(), &TabuConfig::default());
        let r2 = tabu_search(&p, start, &TabuConfig::default());
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.accepted_moves, r2.accepted_moves);
        assert_eq!(r1.candidates_scanned, r2.candidates_scanned);
        assert_eq!(r1.eval_work, r2.eval_work);
    }

    #[test]
    fn delta_and_full_scoring_walk_the_same_trajectory() {
        // Delta scores are bit-identical to full scores, so every
        // candidate comparison — and therefore the whole search — must
        // agree between the two modes.
        let p = problem(5, 12);
        let mut start = Assignment::unassigned(12);
        for k in 0..12 {
            start.assign(VmId(k), ServerId(0));
        }
        let mut runs = Vec::new();
        for scoring in [Scoring::Delta, Scoring::Full] {
            runs.push(tabu_search(
                &p,
                start.clone(),
                &TabuConfig {
                    max_iterations: 120,
                    scoring,
                    ..Default::default()
                },
            ));
        }
        let (d, f) = (&runs[0], &runs[1]);
        assert_eq!(d.best, f.best);
        assert_eq!(
            d.best_score.violation.to_bits(),
            f.best_score.violation.to_bits()
        );
        assert_eq!(
            d.best_score.total_cost.to_bits(),
            f.best_score.total_cost.to_bits()
        );
        assert_eq!(d.accepted_moves, f.accepted_moves);
        assert_eq!(d.aspiration_hits, f.aspiration_hits);
        assert_eq!(d.candidates_scanned, f.candidates_scanned);
        assert!(d.full_evals == 0 && f.delta_evals == 0);
        assert!(
            d.eval_work < f.eval_work,
            "delta work {} must undercut full work {}",
            d.eval_work,
            f.eval_work
        );
    }

    #[test]
    fn exhaustive_neighborhood_is_deterministic_and_ignores_the_seed() {
        let p = problem(4, 8);
        let start = Assignment::from_genes(&[0; 8]);
        let cfg = |seed| TabuConfig {
            max_iterations: 40,
            neighborhood: Neighborhood::Exhaustive,
            seed,
            ..Default::default()
        };
        let r1 = tabu_search(&p, start.clone(), &cfg(0));
        let r2 = tabu_search(&p, start.clone(), &cfg(12345));
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.candidates_scanned, r2.candidates_scanned);
        // Full scan considers every non-noop pair each iteration.
        assert!(r1.candidates_scanned >= 40 * (8 * 3));
        assert_eq!(r1.best_score.violation, 0.0);
    }

    #[test]
    fn empty_problem_is_a_noop() {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(1))],
        );
        let p = AllocationProblem::new(infra, RequestBatch::new(), None);
        let r = tabu_search(&p, Assignment::unassigned(0), &TabuConfig::default());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn parallel_scan_matches_serial_bit_for_bit() {
        let p = problem(5, 12);
        let mut start = Assignment::unassigned(12);
        for k in 0..12 {
            start.assign(VmId(k), ServerId(0));
        }
        let cfg = |threads| TabuConfig {
            max_iterations: 80,
            neighborhood: Neighborhood::Exhaustive,
            threads,
            ..Default::default()
        };
        let serial = tabu_search(&p, start.clone(), &cfg(1));
        for threads in [2, 4, 7] {
            let par = tabu_search(&p, start.clone(), &cfg(threads));
            assert_eq!(serial.best, par.best, "threads={threads}");
            assert_eq!(
                serial.best_score.total_cost.to_bits(),
                par.best_score.total_cost.to_bits()
            );
            assert_eq!(serial.accepted_moves, par.accepted_moves);
            assert_eq!(serial.aspiration_hits, par.aspiration_hits);
            assert_eq!(serial.candidates_scanned, par.candidates_scanned);
            assert_eq!(serial.delta_evals, par.delta_evals);
            assert_eq!(serial.eval_work, par.eval_work, "threads={threads}");
        }
    }

    #[test]
    fn candidate_list_reaches_feasibility_with_less_scanning() {
        let p = problem(4, 10);
        let mut start = Assignment::unassigned(10);
        for k in 0..10 {
            start.assign(VmId(k), ServerId(0));
        }
        let exhaustive = tabu_search(
            &p,
            start.clone(),
            &TabuConfig {
                max_iterations: 60,
                neighborhood: Neighborhood::Exhaustive,
                ..Default::default()
            },
        );
        let candidates = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 60,
                neighborhood: Neighborhood::Candidates { refresh: 16 },
                ..Default::default()
            },
        );
        assert_eq!(candidates.best_score.violation, 0.0);
        assert!(p.is_feasible(&candidates.best));
        assert!(
            candidates.candidates_scanned < exhaustive.candidates_scanned,
            "candidate list must scan less: {} vs {}",
            candidates.candidates_scanned,
            exhaustive.candidates_scanned
        );
    }

    #[test]
    fn candidate_list_is_identical_across_scoring_modes() {
        let p = problem(5, 12);
        let mut start = Assignment::unassigned(12);
        for k in 0..12 {
            start.assign(VmId(k), ServerId(0));
        }
        let cfg = |scoring| TabuConfig {
            max_iterations: 80,
            neighborhood: Neighborhood::Candidates { refresh: 10 },
            scoring,
            ..Default::default()
        };
        let d = tabu_search(&p, start.clone(), &cfg(Scoring::Delta));
        let f = tabu_search(&p, start, &cfg(Scoring::Full));
        assert_eq!(d.best, f.best);
        assert_eq!(d.accepted_moves, f.accepted_moves);
        assert_eq!(d.candidates_scanned, f.candidates_scanned);
        assert_eq!(
            d.best_score.total_cost.to_bits(),
            f.best_score.total_cost.to_bits()
        );
    }

    #[test]
    fn unbounded_deadline_never_fires_and_expired_deadline_stops_at_once() {
        let p = problem(4, 8);
        let start = Assignment::from_genes(&[0; 8]);
        let r = tabu_search(&p, start.clone(), &TabuConfig::default());
        assert!(!r.deadline_hit);
        let expired = tabu_search(
            &p,
            start.clone(),
            &TabuConfig {
                deadline: Deadline::within(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(expired.deadline_hit);
        assert_eq!(expired.iterations, 0, "no iteration may start past expiry");
        // Anytime contract: the incumbent is still the (scored) start.
        assert_eq!(expired.best, start);
    }

    #[test]
    fn observer_sees_a_strictly_improving_incumbent_sequence() {
        struct Recorder(Vec<(usize, Score)>);
        impl SearchObserver for Recorder {
            fn on_incumbent(&mut self, iteration: usize, score: Score) {
                self.0.push((iteration, score));
            }
        }
        let p = problem(4, 10);
        let mut start = Assignment::unassigned(10);
        for k in 0..10 {
            start.assign(VmId(k), ServerId(0));
        }
        let mut rec = Recorder(Vec::new());
        let r = tabu_search_observed(
            &p,
            start,
            &TabuConfig {
                max_iterations: 120,
                neighborhood: Neighborhood::Candidates { refresh: 12 },
                ..Default::default()
            },
            &mut rec,
        );
        assert!(rec.0.len() >= 2, "search must improve at least once");
        assert_eq!(rec.0[0].0, 0, "first report is the start");
        for w in rec.0.windows(2) {
            assert!(w[1].0 > w[0].0, "iterations strictly increase");
            assert!(w[1].1.better_than(&w[0].1), "incumbents strictly improve");
        }
        let last = rec.0.last().unwrap().1;
        assert_eq!(last.total_cost.to_bits(), r.best_score.total_cost.to_bits());
    }

    #[test]
    fn best_never_worse_than_start() {
        let p = problem(5, 10);
        let start = Assignment::from_genes(&[0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        let s0 = score(&p, &start);
        let r = tabu_search(
            &p,
            start,
            &TabuConfig {
                max_iterations: 100,
                ..Default::default()
            },
        );
        assert!(
            r.best_score.better_than(&s0) || r.best_score == s0,
            "tabu must never return worse than its start"
        );
    }
}
