//! Mating selection: binary tournaments.

use crate::crowding::crowded_less;
use crate::individual::Individual;
use rand::Rng;

/// Binary tournament with the NSGA-II crowded-comparison operator.
/// Returns the index of the winner.
pub fn tournament_nsga2(pop: &[Individual], rng: &mut impl Rng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if crowded_less(&pop[a], &pop[b]) {
        a
    } else if crowded_less(&pop[b], &pop[a]) {
        b
    } else if rng.gen::<bool>() {
        a
    } else {
        b
    }
}

/// Binary tournament for NSGA-III: feasibility first (Deb & Jain 2014 use
/// random selection among feasibles; with constraints, the feasible /
/// lower-violation individual wins), ties broken randomly.
pub fn tournament_nsga3(pop: &[Individual], rng: &mut impl Rng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    match (pop[a].is_feasible(), pop[b].is_feasible()) {
        (true, false) => a,
        (false, true) => b,
        (false, false) => {
            if pop[a].violation < pop[b].violation {
                a
            } else if pop[b].violation < pop[a].violation {
                b
            } else if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
        (true, true) => {
            if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
    }
}

/// U-NSGA-III niching-based tournament (Seada & Deb 2014, the paper's
/// ref. 28): two candidates *compete* only when they share a reference
/// niche — the feasible / lower-violation / lower-rank / closer-to-ray
/// one wins; candidates from different niches are both useful for
/// diversity, so the winner is random.
pub fn tournament_unsga3(pop: &[Individual], rng: &mut impl Rng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    let (ia, ib) = (&pop[a], &pop[b]);
    let same_niche = ia.niche != usize::MAX && ia.niche == ib.niche;
    if !same_niche {
        // Constraint handling still applies across niches.
        return match (ia.is_feasible(), ib.is_feasible()) {
            (true, false) => a,
            (false, true) => b,
            _ => {
                if rng.gen::<bool>() {
                    a
                } else {
                    b
                }
            }
        };
    }
    match (ia.is_feasible(), ib.is_feasible()) {
        (true, false) => a,
        (false, true) => b,
        (false, false) => {
            if ia.violation <= ib.violation {
                a
            } else {
                b
            }
        }
        (true, true) => {
            if ia.rank != ib.rank {
                if ia.rank < ib.rank {
                    a
                } else {
                    b
                }
            } else if ia.niche_distance <= ib.niche_distance {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ind(obj: Vec<f64>, violation: f64, rank: usize, crowding: f64) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.set_evaluation(Evaluation {
            objectives: obj,
            violation,
        });
        i.rank = rank;
        i.crowding = crowding;
        i
    }

    #[test]
    fn unsga3_same_niche_prefers_rank_then_distance() {
        let mut a = ind(vec![1.0], 0.0, 0, 0.0);
        let mut b = ind(vec![2.0], 0.0, 1, 0.0);
        a.niche = 3;
        b.niche = 3;
        a.niche_distance = 0.5;
        b.niche_distance = 0.1;
        let pop = vec![a, b];
        let mut rng = SmallRng::seed_from_u64(8);
        let mut wins0 = 0;
        for _ in 0..200 {
            if tournament_unsga3(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!(
            wins0 > 120,
            "lower rank in same niche must win, got {wins0}/200"
        );
    }

    #[test]
    fn unsga3_different_niches_pick_randomly() {
        let mut a = ind(vec![1.0], 0.0, 0, 0.0);
        let mut b = ind(vec![100.0], 0.0, 5, 0.0);
        a.niche = 1;
        b.niche = 2;
        let pop = vec![a, b];
        let mut rng = SmallRng::seed_from_u64(9);
        let mut wins0 = 0;
        for _ in 0..400 {
            if tournament_unsga3(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        // Cross-niche, both feasible: ~50/50 regardless of rank.
        assert!(
            (120..280).contains(&wins0),
            "expected near-uniform, got {wins0}/400"
        );
    }

    #[test]
    fn unsga3_feasibility_dominates_across_niches() {
        let mut a = ind(vec![1.0], 0.0, 3, 0.0);
        let mut b = ind(vec![0.1], 2.0, 0, 0.0);
        a.niche = 1;
        b.niche = 2;
        let pop = vec![a, b];
        let mut rng = SmallRng::seed_from_u64(10);
        let mut wins0 = 0;
        for _ in 0..200 {
            if tournament_unsga3(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!(wins0 > 120, "feasible must beat infeasible across niches");
    }

    #[test]
    fn nsga2_tournament_prefers_lower_rank() {
        let pop = vec![ind(vec![1.0], 0.0, 0, 1.0), ind(vec![2.0], 0.0, 5, 100.0)];
        let mut rng = SmallRng::seed_from_u64(2);
        let mut wins0 = 0;
        for _ in 0..200 {
            if tournament_nsga2(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        // Index 0 should win every mixed tournament and half of the
        // self-tournaments: strictly more than 60 % overall.
        assert!(
            wins0 > 120,
            "rank-0 should dominate tournaments, won {wins0}/200"
        );
    }

    #[test]
    fn nsga3_tournament_prefers_feasible() {
        let pop = vec![ind(vec![1.0], 0.0, 0, 0.0), ind(vec![0.5], 3.0, 0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(3);
        let mut wins0 = 0;
        for _ in 0..200 {
            if tournament_nsga3(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!(wins0 > 120, "feasible should dominate, won {wins0}/200");
    }

    #[test]
    fn nsga3_tournament_prefers_lower_violation() {
        let pop = vec![ind(vec![1.0], 1.0, 0, 0.0), ind(vec![1.0], 9.0, 0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(4);
        let mut wins0 = 0;
        for _ in 0..200 {
            if tournament_nsga3(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!(wins0 > 120, "lower violation should win, won {wins0}/200");
    }
}
