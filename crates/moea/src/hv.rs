//! Hypervolume indicator for 2- and 3-objective fronts — used by the
//! ablation benches to compare front quality between NSGA-II, NSGA-III and
//! the hybrids.

/// Hypervolume of a minimisation front w.r.t. a reference (nadir-ish)
/// point. Points not strictly dominating `reference` are ignored.
///
/// Supports 2 and 3 objectives (all this repo needs).
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut sp = cpo_obs::span!("moea.hypervolume");
    sp.field("points", front.len());
    match reference.len() {
        2 => hv2(front, reference),
        3 => hv3(front, reference),
        d => panic!("hypervolume implemented for 2 and 3 objectives, got {d}"),
    }
}

fn dominated_filter(front: &[Vec<f64>], reference: &[f64]) -> Vec<Vec<f64>> {
    front
        .iter()
        .filter(|p| p.iter().zip(reference).all(|(a, r)| a < r))
        .cloned()
        .collect()
}

fn hv2(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = dominated_filter(front, reference);
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by f1 ascending; sweep keeping the best f2 so far.
    pts.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
    let mut hv = 0.0;
    let mut prev_f2 = reference[1];
    for p in &pts {
        if p[1] < prev_f2 {
            hv += (reference[0] - p[0]) * (prev_f2 - p[1]);
            prev_f2 = p[1];
        }
    }
    hv
}

/// 3-D hypervolume by slicing along the third objective (HSO-style).
fn hv3(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let pts = dominated_filter(front, reference);
    if pts.is_empty() {
        return 0.0;
    }
    // Collect distinct f3 slice boundaries.
    let mut zs: Vec<f64> = pts.iter().map(|p| p[2]).collect();
    zs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    zs.dedup();
    zs.push(reference[2]);

    let mut hv = 0.0;
    for w in zs.windows(2) {
        let (z_lo, z_hi) = (w[0], w[1]);
        if z_hi <= z_lo {
            continue;
        }
        // Points active in this slice: f3 ≤ z_lo.
        let slice: Vec<Vec<f64>> = pts
            .iter()
            .filter(|p| p[2] <= z_lo)
            .map(|p| vec![p[0], p[1]])
            .collect();
        hv += hv2(&slice, &reference[..2]) * (z_hi - z_lo);
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d_is_a_rectangle() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let lone = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let with_dominated = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((lone - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn staircase_2d_sums_rectangles() {
        // (1,2) and (2,1) vs ref (3,3): union = 2*1 + 1*2 - overlap 1*1 = 3.
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn point_outside_reference_ignored() {
        let hv = hypervolume(&[vec![4.0, 4.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn single_point_3d_is_a_box() {
        let hv = hypervolume(&[vec![1.0, 1.0, 1.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 1.0 * 2.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_disjoint_boxes_3d() {
        // (1,1,2) and (2,2,1) vs ref (3,3,3).
        // Slice z∈[1,2): only (2,2,1) active → area (3-2)(3-2)=1 → vol 1.
        // Slice z∈[2,3): both active → 2D hv of {(1,1),(2,2)} vs (3,3) = 4 → vol 4.
        let hv = hypervolume(
            &[vec![1.0, 1.0, 2.0], vec![2.0, 2.0, 1.0]],
            &[3.0, 3.0, 3.0],
        );
        assert!((hv - 5.0).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn better_front_has_larger_hv() {
        let close = vec![vec![0.5, 0.5, 0.5]];
        let far = vec![vec![1.5, 1.5, 1.5]];
        let r = [2.0, 2.0, 2.0];
        assert!(hypervolume(&close, &r) > hypervolume(&far, &r));
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "2 and 3 objectives")]
    fn unsupported_dimension_panics() {
        let _ = hypervolume(&[vec![1.0; 4]], &[2.0; 4]);
    }
}
