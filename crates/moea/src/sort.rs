//! Fast non-dominated sorting (Deb et al. 2002) with constraint-domination.
//!
//! O(M·N²) as in the NSGA-II paper; `N = |population|`, `M = objectives`.
//! Sets each individual's `rank` and returns the fronts as index lists.

use crate::individual::Individual;

/// Sorts the population into non-domination fronts under
/// constraint-domination, writing `rank` into each individual and
/// returning front membership (`fronts[0]` = best front).
pub fn fast_non_dominated_sort(pop: &mut [Individual]) -> Vec<Vec<usize>> {
    let n = pop.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[p] = individuals that p dominates;
    // domination_count[p] = how many dominate p.
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut count = vec![0usize; n];
    for p in 0..n {
        for q in (p + 1)..n {
            if pop[p].constrained_dominates(&pop[q]) {
                dominated[p].push(q);
                count[q] += 1;
            } else if pop[q].constrained_dominates(&pop[p]) {
                dominated[q].push(p);
                count[p] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&p| count[p] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        for &p in &current {
            pop[p].rank = rank;
        }
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated[p] {
                count[q] -= 1;
                if count[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
        rank += 1;
    }
    debug_assert_eq!(fronts.iter().map(Vec::len).sum::<usize>(), n);
    fronts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    fn ind(obj: Vec<f64>, violation: f64) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.set_evaluation(Evaluation {
            objectives: obj,
            violation,
        });
        i
    }

    #[test]
    fn empty_population_yields_no_fronts() {
        let mut pop: Vec<Individual> = vec![];
        assert!(fast_non_dominated_sort(&mut pop).is_empty());
    }

    #[test]
    fn mutually_nondominated_points_share_front_zero() {
        let mut pop = vec![
            ind(vec![1.0, 4.0], 0.0),
            ind(vec![2.0, 3.0], 0.0),
            ind(vec![4.0, 1.0], 0.0),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 1);
        assert!(pop.iter().all(|i| i.rank == 0));
    }

    #[test]
    fn dominated_points_fall_to_later_fronts() {
        let mut pop = vec![
            ind(vec![1.0, 1.0], 0.0), // front 0 (dominates everything)
            ind(vec![2.0, 2.0], 0.0), // front 1
            ind(vec![3.0, 3.0], 0.0), // front 2
            ind(vec![1.0, 3.0], 0.0), // dominated by (1,1); nondominated vs (2,2) → front 1
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(pop[0].rank, 0);
        assert_eq!(pop[3].rank, 1);
        assert_eq!(pop[1].rank, 1);
        assert_eq!(pop[2].rank, 2);
        assert_eq!(fronts[0].len(), 1);
        assert_eq!(fronts[1].len(), 2);
    }

    #[test]
    fn infeasible_individuals_rank_behind_feasible() {
        let mut pop = vec![
            ind(vec![9.0, 9.0], 0.0), // feasible, poor objectives
            ind(vec![0.0, 0.0], 0.5), // infeasible, perfect objectives
            ind(vec![0.0, 0.0], 0.1), // less infeasible
        ];
        let _ = fast_non_dominated_sort(&mut pop);
        assert_eq!(pop[0].rank, 0);
        assert_eq!(pop[2].rank, 1);
        assert_eq!(pop[1].rank, 2);
    }

    #[test]
    fn fronts_partition_population() {
        let mut pop: Vec<Individual> = (0..20)
            .map(|i| ind(vec![(i % 5) as f64, (i / 5) as f64], 0.0))
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        // Ranks must be consistent with front index.
        for (f, members) in fronts.iter().enumerate() {
            for &m in members {
                assert_eq!(pop[m].rank, f);
            }
        }
    }

    #[test]
    fn no_front_member_dominates_another_in_same_front() {
        let mut pop: Vec<Individual> = (0..30)
            .map(|i| {
                let x = (i as f64 * 0.37).sin().abs() * 10.0;
                let y = (i as f64 * 0.73).cos().abs() * 10.0;
                ind(vec![x, y], 0.0)
            })
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        for members in &fronts {
            for &a in members {
                for &b in members {
                    if a != b {
                        assert!(
                            !pop[a].constrained_dominates(&pop[b]),
                            "front member dominates sibling"
                        );
                    }
                }
            }
        }
    }
}
