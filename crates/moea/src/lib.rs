//! # cpo-moea — NSGA-II / NSGA-III evolutionary engine
//!
//! A from-scratch multi-objective evolutionary framework providing what the
//! paper takes from its (Java) MOEA framework: NSGA-II (Deb et al. 2002),
//! NSGA-III (Deb & Jain 2014) and U-NSGA-III (Seada & Deb 2014 — the
//! paper's ref. 28) with simulated binary crossover,
//! polynomial mutation, fast non-dominated sorting, crowding distance,
//! Das–Dennis reference points, niching, constraint-domination — plus the
//! repair hook of the paper's Fig. 4 through which the tabu search (or any
//! other fixer) plugs into the reproduction pipeline.
//!
//! Populations evaluate in parallel with rayon; runs are deterministic
//! given a seed regardless of parallelism.
//!
//! ```
//! use cpo_moea::prelude::*;
//!
//! // Minimise the classic SCH problem with the paper's Table III settings.
//! struct Sch;
//! impl MoeaProblem for Sch {
//!     fn n_vars(&self) -> usize { 1 }
//!     fn n_objectives(&self) -> usize { 2 }
//!     fn bounds(&self, _: usize) -> (f64, f64) { (-1e3, 1e3) }
//!     fn evaluate(&self, g: &[f64]) -> Evaluation {
//!         Evaluation::feasible(vec![g[0] * g[0], (g[0] - 2.0) * (g[0] - 2.0)])
//!     }
//! }
//! let cfg = NsgaConfig { max_evaluations: 2_000, ..NsgaConfig::paper_defaults(Variant::Nsga2) };
//! let result = run(&Sch, &cfg, None);
//! assert!(!result.first_front().is_empty());
//! ```

#![warn(missing_docs)]

pub mod crowding;
pub mod engine;
pub mod hv;
pub mod individual;
pub mod nsga3;
pub mod operators;
pub mod problem;
pub mod quality;
pub mod refpoints;
pub mod selection;
pub mod sort;

/// The most-used engine types.
pub mod prelude {
    pub use crate::engine::{
        run, GenStats, MoeaResult, NsgaConfig, Operators, Repair, RepairMode, Variant,
    };
    pub use crate::hv::hypervolume;
    pub use crate::individual::Individual;
    pub use crate::operators::{
        polynomial_mutation, reset_mutation, sbx, uniform_crossover, PmParams, SbxParams,
    };
    pub use crate::problem::{Evaluation, MoeaProblem};
    pub use crate::quality::{igd, igd_plus, spacing};
    pub use crate::refpoints::das_dennis;
}
