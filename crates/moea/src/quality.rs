//! Front-quality indicators beyond hypervolume: inverted generational
//! distance (IGD / IGD⁺) and Schott's spacing. Used by the ablation
//! benches to compare NSGA-II, NSGA-III and the hybrids on identical
//! problems.

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Inverted generational distance: mean distance from each reference
/// point to its nearest front member. Lower is better; 0 means the front
/// covers the reference set exactly.
///
/// # Panics
/// Panics when either set is empty.
pub fn igd(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!front.is_empty(), "empty front");
    assert!(!reference.is_empty(), "empty reference set");
    reference
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|f| euclidean(f, r))
                .fold(f64::INFINITY, f64::min)
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// IGD⁺ (Ishibuchi et al. 2015): like IGD but distances only count the
/// components where the front point is *worse* than the reference point,
/// making the indicator weakly Pareto-compliant for minimisation.
pub fn igd_plus(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!front.is_empty(), "empty front");
    assert!(!reference.is_empty(), "empty reference set");
    reference
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|f| {
                    f.iter()
                        .zip(r)
                        .map(|(fi, ri)| (fi - ri).max(0.0).powi(2))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// Schott's spacing: standard deviation of nearest-neighbour distances
/// within the front. Lower = more uniform spread. Zero for fronts with
/// fewer than three points.
pub fn spacing(front: &[Vec<f64>]) -> f64 {
    if front.len() < 3 {
        return 0.0;
    }
    let nearest: Vec<f64> = front
        .iter()
        .enumerate()
        .map(|(i, f)| {
            front
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, g)| {
                    // Schott uses the L1 distance.
                    f.iter().zip(g).map(|(a, b)| (a - b).abs()).sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = nearest.iter().sum::<f64>() / nearest.len() as f64;
    (nearest.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (nearest.len() - 1) as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igd_zero_when_front_covers_reference() {
        let front = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(igd(&front, &front), 0.0);
    }

    #[test]
    fn igd_measures_distance_to_missing_regions() {
        let reference = vec![vec![0.0, 1.0], vec![0.5, 0.5], vec![1.0, 0.0]];
        let full = reference.clone();
        let partial = vec![vec![0.0, 1.0], vec![1.0, 0.0]]; // middle missing
        assert!(igd(&partial, &reference) > igd(&full, &reference));
    }

    #[test]
    fn igd_plus_ignores_dominating_displacement() {
        // Front point (0.4, 0.4) dominates reference (0.5, 0.5): IGD⁺ = 0,
        // while plain IGD > 0.
        let reference = vec![vec![0.5, 0.5]];
        let front = vec![vec![0.4, 0.4]];
        assert!(igd(&front, &reference) > 0.0);
        assert_eq!(igd_plus(&front, &reference), 0.0);
        // A worse point scores positive in both.
        let worse = vec![vec![0.6, 0.6]];
        assert!(igd_plus(&worse, &reference) > 0.0);
    }

    #[test]
    fn spacing_zero_for_uniform_fronts() {
        let uniform: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 4.0 - i as f64]).collect();
        assert!(spacing(&uniform) < 1e-12);
    }

    #[test]
    fn spacing_positive_for_clumped_fronts() {
        let clumped = vec![
            vec![0.0, 4.0],
            vec![0.1, 3.9],
            vec![0.2, 3.8],
            vec![4.0, 0.0],
        ];
        assert!(spacing(&clumped) > 0.1);
    }

    #[test]
    fn spacing_degenerate_fronts_are_zero() {
        assert_eq!(spacing(&[]), 0.0);
        assert_eq!(spacing(&[vec![1.0, 2.0]]), 0.0);
        assert_eq!(spacing(&[vec![1.0, 2.0], vec![2.0, 1.0]]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty front")]
    fn igd_rejects_empty_front() {
        let _ = igd(&[], &[vec![0.0]]);
    }
}
