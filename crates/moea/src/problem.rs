//! The problem abstraction consumed by the evolutionary engine.

/// Result of evaluating one genome: objective values (all minimised) and a
/// graded constraint-violation measure (0 = feasible).
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Objective values, to be minimised.
    pub objectives: Vec<f64>,
    /// Total constraint violation degree; `0.0` means feasible. Used by
    /// Deb's constraint-domination rules.
    pub violation: f64,
}

impl Evaluation {
    /// A feasible evaluation.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Self {
            objectives,
            violation: 0.0,
        }
    }

    /// `true` when no constraint is violated.
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// A real-coded multi-objective minimisation problem.
///
/// Genomes are `Vec<f64>` with per-variable box bounds; discrete problems
/// (like server indices) decode by flooring, the standard real-coding trick
/// the paper's SBX/PM operators ("SBX and PM standard") assume.
///
/// Implementations must be [`Sync`] so populations can be evaluated in
/// parallel with rayon.
pub trait MoeaProblem: Sync {
    /// Number of decision variables (genes).
    fn n_vars(&self) -> usize;

    /// Number of objectives.
    fn n_objectives(&self) -> usize;

    /// Inclusive lower / exclusive-ish upper bound of variable `i`.
    fn bounds(&self, i: usize) -> (f64, f64);

    /// Evaluates a genome.
    fn evaluate(&self, genes: &[f64]) -> Evaluation;

    /// Optional name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// Clamps every gene into its box bounds (operators can overshoot).
pub fn clamp_genes(problem: &dyn MoeaProblem, genes: &mut [f64]) {
    for (i, g) in genes.iter_mut().enumerate() {
        let (lo, hi) = problem.bounds(i);
        *g = g.clamp(lo, hi);
    }
}

#[cfg(test)]
pub(crate) mod test_problems {
    use super::*;

    /// The classic 2-objective SCH problem: f1 = x², f2 = (x−2)²;
    /// Pareto front at x ∈ [0, 2].
    pub struct Sch;

    impl MoeaProblem for Sch {
        fn n_vars(&self) -> usize {
            1
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (-1000.0, 1000.0)
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            let x = genes[0];
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
        fn name(&self) -> &str {
            "SCH"
        }
    }

    /// DTLZ2 with 3 objectives — the standard NSGA-III sanity problem; the
    /// Pareto front is the unit-sphere octant Σ f_i² = 1.
    pub struct Dtlz2 {
        pub n_vars: usize,
    }

    impl MoeaProblem for Dtlz2 {
        fn n_vars(&self) -> usize {
            self.n_vars
        }
        fn n_objectives(&self) -> usize {
            3
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let m = 3usize;
            let k = self.n_vars - (m - 1);
            let g: f64 = x[self.n_vars - k..]
                .iter()
                .map(|v| (v - 0.5) * (v - 0.5))
                .sum();
            let mut f = vec![1.0 + g; m];
            for (i, fi) in f.iter_mut().enumerate() {
                for v in x.iter().take(m - 1 - i) {
                    *fi *= (v * std::f64::consts::FRAC_PI_2).cos();
                }
                if i > 0 {
                    *fi *= (x[m - 1 - i] * std::f64::consts::FRAC_PI_2).sin();
                }
            }
            Evaluation::feasible(f)
        }
        fn name(&self) -> &str {
            "DTLZ2"
        }
    }

    /// Constrained problem: minimise (x, y) subject to x + y ≥ 1.
    pub struct ConstrainedSum;

    impl MoeaProblem for ConstrainedSum {
        fn n_vars(&self) -> usize {
            2
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, g: &[f64]) -> Evaluation {
            let violation = (1.0 - (g[0] + g[1])).max(0.0);
            Evaluation {
                objectives: vec![g[0], g[1]],
                violation,
            }
        }
        fn name(&self) -> &str {
            "constrained-sum"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_problems::*;
    use super::*;

    #[test]
    fn sch_evaluates_known_points() {
        let e = Sch.evaluate(&[0.0]);
        assert_eq!(e.objectives, vec![0.0, 4.0]);
        assert!(e.is_feasible());
        let e = Sch.evaluate(&[2.0]);
        assert_eq!(e.objectives, vec![4.0, 0.0]);
    }

    #[test]
    fn dtlz2_optimum_lies_on_unit_sphere() {
        let p = Dtlz2 { n_vars: 7 };
        // x_{m..} = 0.5 zeroes g; then Σ f² = 1.
        let mut x = vec![0.3, 0.7];
        x.extend(vec![0.5; 5]);
        let e = p.evaluate(&x);
        let norm: f64 = e.objectives.iter().map(|f| f * f).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn constrained_sum_reports_violation() {
        let e = ConstrainedSum.evaluate(&[0.2, 0.3]);
        assert!((e.violation - 0.5).abs() < 1e-12);
        assert!(!e.is_feasible());
        let ok = ConstrainedSum.evaluate(&[0.6, 0.6]);
        assert!(ok.is_feasible());
    }

    #[test]
    fn clamp_genes_respects_bounds() {
        let p = ConstrainedSum;
        let mut g = vec![-0.5, 1.7];
        clamp_genes(&p, &mut g);
        assert_eq!(g, vec![0.0, 1.0]);
    }
}
