//! Variation operators: simulated binary crossover (SBX) and polynomial
//! mutation (PM) — the "SBX and PM standard" the paper applies, with the
//! rate / distribution-index parameters of its Table III.

use crate::problem::MoeaProblem;
use rand::Rng;

/// SBX parameters (paper Table III: rate 0.70, distribution index 15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SbxParams {
    /// Per-pair crossover probability.
    pub rate: f64,
    /// Distribution index η_c; larger = offspring closer to parents.
    pub distribution_index: f64,
}

impl Default for SbxParams {
    fn default() -> Self {
        Self {
            rate: 0.70,
            distribution_index: 15.0,
        }
    }
}

/// PM parameters (paper Table III: rate 0.20, distribution index 15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmParams {
    /// Per-gene mutation probability. The paper's Table III `pm.rate = 0.20`
    /// follows the MOEA-framework convention of a per-gene rate, which we
    /// adopt unchanged.
    pub rate: f64,
    /// Distribution index η_m.
    pub distribution_index: f64,
}

impl Default for PmParams {
    fn default() -> Self {
        Self {
            rate: 0.20,
            distribution_index: 15.0,
        }
    }
}

/// Simulated binary crossover on two parents, producing two children.
///
/// Standard Deb & Agrawal (1995) formulation with boundary handling: with
/// probability `params.rate` the pair is crossed; each gene pair crosses
/// with probability 0.5 as in the reference implementations.
pub fn sbx(
    problem: &dyn MoeaProblem,
    params: SbxParams,
    p1: &[f64],
    p2: &[f64],
    rng: &mut impl Rng,
) -> (Vec<f64>, Vec<f64>) {
    let n = p1.len();
    debug_assert_eq!(n, p2.len());
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if rng.gen::<f64>() > params.rate {
        return (c1, c2);
    }
    let eta = params.distribution_index;
    for i in 0..n {
        if rng.gen::<f64>() > 0.5 {
            continue;
        }
        let (x1, x2) = (p1[i], p2[i]);
        if (x1 - x2).abs() < 1e-14 {
            continue;
        }
        let (lo, hi) = problem.bounds(i);
        let (y1, y2) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        let u: f64 = rng.gen();

        // Child 1 (towards lower bound).
        let beta = 1.0 + 2.0 * (y1 - lo) / (y2 - y1);
        let alpha = 2.0 - beta.powf(-(eta + 1.0));
        let betaq = if u <= 1.0 / alpha {
            (u * alpha).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 - u * alpha)).powf(1.0 / (eta + 1.0))
        };
        let mut ch1 = 0.5 * ((y1 + y2) - betaq * (y2 - y1));

        // Child 2 (towards upper bound).
        let beta = 1.0 + 2.0 * (hi - y2) / (y2 - y1);
        let alpha = 2.0 - beta.powf(-(eta + 1.0));
        let betaq = if u <= 1.0 / alpha {
            (u * alpha).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 - u * alpha)).powf(1.0 / (eta + 1.0))
        };
        let mut ch2 = 0.5 * ((y1 + y2) + betaq * (y2 - y1));

        ch1 = ch1.clamp(lo, hi);
        ch2 = ch2.clamp(lo, hi);
        if rng.gen::<f64>() < 0.5 {
            std::mem::swap(&mut ch1, &mut ch2);
        }
        c1[i] = ch1;
        c2[i] = ch2;
    }
    (c1, c2)
}

/// Uniform crossover: each gene pair swaps with probability 0.5 when the
/// pair crosses at all (probability `rate`). The classic operator for
/// integer-coded genomes such as this repo's server-id chromosomes, where
/// SBX's arithmetic blending has no geometric meaning across unrelated
/// server indices.
pub fn uniform_crossover(
    rate: f64,
    p1: &[f64],
    p2: &[f64],
    rng: &mut impl Rng,
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if rng.gen::<f64>() > rate {
        return (c1, c2);
    }
    for i in 0..p1.len() {
        if rng.gen::<bool>() {
            std::mem::swap(&mut c1[i], &mut c2[i]);
        }
    }
    (c1, c2)
}

/// Random-reset mutation: each gene is redrawn uniformly from its box
/// with probability `rate` — the integer-genome analogue of polynomial
/// mutation (a reset to *any* server, not a perturbation to a nearby id).
pub fn reset_mutation(problem: &dyn MoeaProblem, rate: f64, genes: &mut [f64], rng: &mut impl Rng) {
    for (i, g) in genes.iter_mut().enumerate() {
        if rng.gen::<f64>() <= rate {
            let (lo, hi) = problem.bounds(i);
            *g = rng.gen_range(lo..hi);
        }
    }
}

/// Polynomial mutation (Deb & Goyal 1996), mutating each gene with
/// probability `params.rate`.
pub fn polynomial_mutation(
    problem: &dyn MoeaProblem,
    params: PmParams,
    genes: &mut [f64],
    rng: &mut impl Rng,
) {
    let eta = params.distribution_index;
    for (i, g) in genes.iter_mut().enumerate() {
        if rng.gen::<f64>() > params.rate {
            continue;
        }
        let (lo, hi) = problem.bounds(i);
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        let y = *g;
        let delta1 = (y - lo) / span;
        let delta2 = (hi - y) / span;
        let u: f64 = rng.gen();
        let mpow = 1.0 / (eta + 1.0);
        let deltaq = if u < 0.5 {
            let xy = 1.0 - delta1;
            let val = 2.0 * u + (1.0 - 2.0 * u) * xy.powf(eta + 1.0);
            val.powf(mpow) - 1.0
        } else {
            let xy = 1.0 - delta2;
            let val = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * xy.powf(eta + 1.0);
            1.0 - val.powf(mpow)
        };
        *g = (y + deltaq * span).clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::ConstrainedSum;
    use crate::problem::Evaluation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct Box10;
    impl MoeaProblem for Box10 {
        fn n_vars(&self) -> usize {
            10
        }
        fn n_objectives(&self) -> usize {
            1
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (0.0, 10.0)
        }
        fn evaluate(&self, _g: &[f64]) -> Evaluation {
            Evaluation::feasible(vec![0.0])
        }
    }

    #[test]
    fn sbx_children_stay_in_bounds() {
        let p = Box10;
        let mut rng = SmallRng::seed_from_u64(42);
        let p1 = vec![0.1; 10];
        let p2 = vec![9.9; 10];
        for _ in 0..200 {
            let (c1, c2) = sbx(&p, SbxParams::default(), &p1, &p2, &mut rng);
            for g in c1.iter().chain(&c2) {
                assert!((0.0..=10.0).contains(g), "gene {g} out of bounds");
            }
        }
    }

    #[test]
    fn sbx_with_zero_rate_copies_parents() {
        let p = Box10;
        let mut rng = SmallRng::seed_from_u64(1);
        let params = SbxParams {
            rate: 0.0,
            distribution_index: 15.0,
        };
        let p1: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let p2: Vec<f64> = (0..10).map(|i| (9 - i) as f64).collect();
        let (c1, c2) = sbx(&p, params, &p1, &p2, &mut rng);
        assert_eq!(c1, p1);
        assert_eq!(c2, p2);
    }

    #[test]
    fn sbx_mean_preserving_on_average() {
        // SBX is mean-preserving per gene pair: child1 + child2 = p1 + p2.
        let p = Box10;
        let mut rng = SmallRng::seed_from_u64(7);
        let p1 = vec![3.0; 10];
        let p2 = vec![7.0; 10];
        let (c1, c2) = sbx(
            &p,
            SbxParams {
                rate: 1.0,
                distribution_index: 15.0,
            },
            &p1,
            &p2,
            &mut rng,
        );
        for i in 0..10 {
            let sum = c1[i] + c2[i];
            // Clamping can break exact symmetry at bounds; interior here.
            assert!((sum - 10.0).abs() < 1e-6, "gene {i}: {} + {}", c1[i], c2[i]);
        }
    }

    #[test]
    fn high_eta_keeps_children_near_parents() {
        let p = Box10;
        let mut near = 0;
        let total = 500;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..total {
            let (c1, _) = sbx(
                &p,
                SbxParams {
                    rate: 1.0,
                    distribution_index: 100.0,
                },
                &[2.0; 10],
                &[8.0; 10],
                &mut rng,
            );
            if c1
                .iter()
                .all(|g| (g - 2.0).abs() < 1.0 || (g - 8.0).abs() < 1.0)
            {
                near += 1;
            }
        }
        assert!(
            near > total * 8 / 10,
            "eta=100 should hug parents ({near}/{total})"
        );
    }

    #[test]
    fn pm_stays_in_bounds_and_mutates() {
        let p = Box10;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut changed = false;
        for _ in 0..100 {
            let mut g = vec![5.0; 10];
            polynomial_mutation(
                &p,
                PmParams {
                    rate: 1.0,
                    distribution_index: 15.0,
                },
                &mut g,
                &mut rng,
            );
            for v in &g {
                assert!((0.0..=10.0).contains(v));
            }
            if g.iter().any(|&v| (v - 5.0).abs() > 1e-12) {
                changed = true;
            }
        }
        assert!(changed, "rate-1 mutation must change something");
    }

    #[test]
    fn pm_zero_rate_is_identity() {
        let p = ConstrainedSum;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut g = vec![0.25, 0.75];
        polynomial_mutation(
            &p,
            PmParams {
                rate: 0.0,
                distribution_index: 15.0,
            },
            &mut g,
            &mut rng,
        );
        assert_eq!(g, vec![0.25, 0.75]);
    }

    #[test]
    fn uniform_crossover_swaps_but_never_invents_genes() {
        let mut rng = SmallRng::seed_from_u64(13);
        let p1: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let p2: Vec<f64> = (0..12).map(|i| (i + 100) as f64).collect();
        let (c1, c2) = uniform_crossover(1.0, &p1, &p2, &mut rng);
        for i in 0..12 {
            let pair = (c1[i], c2[i]);
            assert!(
                pair == (p1[i], p2[i]) || pair == (p2[i], p1[i]),
                "gene {i} must come from a parent, got {pair:?}"
            );
        }
        // Some position must actually have swapped.
        assert!((0..12).any(|i| c1[i] == p2[i]));
    }

    #[test]
    fn uniform_crossover_zero_rate_copies() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p1 = vec![1.0, 2.0];
        let p2 = vec![3.0, 4.0];
        let (c1, c2) = uniform_crossover(0.0, &p1, &p2, &mut rng);
        assert_eq!(c1, p1);
        assert_eq!(c2, p2);
    }

    #[test]
    fn reset_mutation_redraws_within_bounds() {
        let p = Box10;
        let mut rng = SmallRng::seed_from_u64(21);
        let mut g = vec![5.0; 10];
        reset_mutation(&p, 1.0, &mut g, &mut rng);
        assert!(g.iter().all(|v| (0.0..10.0).contains(v)));
        assert!(
            g.iter().any(|&v| (v - 5.0).abs() > 1e-9),
            "rate 1.0 must change genes"
        );
    }

    #[test]
    fn table3_defaults_match_paper() {
        let s = SbxParams::default();
        assert_eq!(s.rate, 0.70);
        assert_eq!(s.distribution_index, 15.0);
        let m = PmParams::default();
        assert_eq!(m.rate, 0.20);
        assert_eq!(m.distribution_index, 15.0);
    }
}
