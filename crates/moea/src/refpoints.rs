//! Das–Dennis structured reference points for NSGA-III (Deb & Jain 2014).

/// Generates the Das–Dennis simplex lattice: all points on the unit simplex
/// in `m` dimensions whose coordinates are multiples of `1/divisions`.
///
/// The count is `C(divisions + m - 1, m - 1)`.
pub fn das_dennis(m: usize, divisions: usize) -> Vec<Vec<f64>> {
    assert!(m >= 2, "need at least two objectives");
    assert!(divisions >= 1, "need at least one division");
    let mut out = Vec::new();
    let mut point = vec![0usize; m];
    recurse(m, divisions, 0, divisions, &mut point, &mut out);
    out
}

fn recurse(
    m: usize,
    divisions: usize,
    index: usize,
    remaining: usize,
    point: &mut Vec<usize>,
    out: &mut Vec<Vec<f64>>,
) {
    if index == m - 1 {
        point[index] = remaining;
        out.push(point.iter().map(|&p| p as f64 / divisions as f64).collect());
        return;
    }
    for p in 0..=remaining {
        point[index] = p;
        recurse(m, divisions, index + 1, remaining - p, point, out);
    }
}

/// Number of Das–Dennis points for `m` objectives and `d` divisions:
/// `C(d + m - 1, m - 1)`.
pub fn das_dennis_count(m: usize, d: usize) -> usize {
    binomial(d + m - 1, m - 1)
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1usize;
    let mut den = 1usize;
    for i in 0..k {
        num *= n - i;
        den *= i + 1;
    }
    num / den
}

/// Picks the smallest division count whose lattice has at least
/// `target_points` points — the usual way to match population size.
pub fn divisions_for(m: usize, target_points: usize) -> usize {
    let mut d = 1;
    while das_dennis_count(m, d) < target_points {
        d += 1;
        if d > 100 {
            break; // safety against absurd targets
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_objectives_twelve_divisions_is_91_points() {
        // The canonical NSGA-III setting for 3 objectives.
        let pts = das_dennis(3, 12);
        assert_eq!(pts.len(), 91);
        assert_eq!(das_dennis_count(3, 12), 91);
    }

    #[test]
    fn every_point_lies_on_the_simplex() {
        for pts in [das_dennis(2, 5), das_dennis(3, 6), das_dennis(4, 4)] {
            for p in &pts {
                let s: f64 = p.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "point {p:?} sums to {s}");
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn points_are_unique() {
        let pts = das_dennis(3, 8);
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn two_objective_lattice_is_a_line() {
        let pts = das_dennis(2, 4);
        assert_eq!(pts.len(), 5);
        assert!(pts.contains(&vec![0.0, 1.0]));
        assert!(pts.contains(&vec![0.5, 0.5]));
        assert!(pts.contains(&vec![1.0, 0.0]));
    }

    #[test]
    fn corners_are_included() {
        let pts = das_dennis(3, 5);
        assert!(pts.contains(&vec![1.0, 0.0, 0.0]));
        assert!(pts.contains(&vec![0.0, 1.0, 0.0]));
        assert!(pts.contains(&vec![0.0, 0.0, 1.0]));
    }

    #[test]
    fn divisions_for_covers_population() {
        // pop 100, m=3 → 12 divisions (91) is too few; 13 gives 105.
        let d = divisions_for(3, 100);
        assert_eq!(d, 13);
        assert!(das_dennis_count(3, d) >= 100);
        assert!(das_dennis_count(3, d - 1) < 100);
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(14, 2), 91);
        assert_eq!(binomial(3, 5), 0);
    }
}
