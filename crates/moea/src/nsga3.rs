//! NSGA-III environmental selection (Deb & Jain 2014): adaptive
//! normalisation, association to reference directions, and niching.

use crate::individual::Individual;
use rand::Rng;

/// Normalises the objectives of the candidates (indices into `pop`) into
/// `[0,1]`-ish space: subtract the ideal point, divide by the intercepts of
/// the hyperplane through the extreme points (falling back to the nadir
/// span when the plane is degenerate). Returns the normalised vectors in
/// candidate order.
pub fn normalize(pop: &[Individual], candidates: &[usize]) -> Vec<Vec<f64>> {
    assert!(!candidates.is_empty());
    let m = pop[candidates[0]].objectives.len();

    // Ideal point.
    let mut ideal = vec![f64::INFINITY; m];
    for &c in candidates {
        for (i, &o) in pop[c].objectives.iter().enumerate() {
            ideal[i] = ideal[i].min(o);
        }
    }

    // Translated objectives.
    let translated: Vec<Vec<f64>> = candidates
        .iter()
        .map(|&c| {
            pop[c]
                .objectives
                .iter()
                .zip(&ideal)
                .map(|(o, i)| o - i)
                .collect()
        })
        .collect();

    // Extreme point per axis: minimiser of the achievement scalarising
    // function with weight concentrated on that axis.
    let mut intercepts = vec![0.0_f64; m];
    let mut extremes: Vec<usize> = Vec::with_capacity(m);
    for axis in 0..m {
        let mut best = 0usize;
        let mut best_asf = f64::INFINITY;
        for (idx, t) in translated.iter().enumerate() {
            let asf = t
                .iter()
                .enumerate()
                .map(|(i, &v)| if i == axis { v } else { v * 1e6 })
                .fold(0.0_f64, f64::max);
            if asf < best_asf {
                best_asf = asf;
                best = idx;
            }
        }
        extremes.push(best);
    }

    // Try to solve for the hyperplane through the extremes: Z a = 1.
    let plane = solve_intercepts(&translated, &extremes, m);
    match plane {
        Some(a) if a.iter().all(|&x| x.is_finite() && x > 1e-10) => {
            for (i, &ai) in a.iter().enumerate() {
                intercepts[i] = 1.0 / ai;
            }
        }
        _ => {
            // Fallback: nadir of the candidate set.
            for inter in intercepts.iter_mut() {
                *inter = 0.0;
            }
            for t in &translated {
                for (i, &v) in t.iter().enumerate() {
                    intercepts[i] = intercepts[i].max(v);
                }
            }
        }
    }
    for inter in intercepts.iter_mut() {
        if *inter <= 1e-12 {
            *inter = 1e-12; // degenerate axis
        }
    }

    translated
        .into_iter()
        .map(|t| t.iter().zip(&intercepts).map(|(v, i)| v / i).collect())
        .collect()
}

/// Gaussian elimination solving `Z a = 1` where rows of `Z` are the extreme
/// points. Returns `None` when singular.
fn solve_intercepts(translated: &[Vec<f64>], extremes: &[usize], m: usize) -> Option<Vec<f64>> {
    // Duplicate extremes → singular plane.
    for (i, a) in extremes.iter().enumerate() {
        for b in &extremes[i + 1..] {
            if a == b {
                return None;
            }
        }
    }
    let mut mat: Vec<Vec<f64>> = extremes
        .iter()
        .map(|&e| {
            let mut row = translated[e].clone();
            row.push(1.0); // RHS
            row
        })
        .collect();
    for col in 0..m {
        // Partial pivot.
        let pivot =
            (col..m).max_by(|&a, &b| mat[a][col].abs().partial_cmp(&mat[b][col].abs()).unwrap())?;
        if mat[pivot][col].abs() < 1e-12 {
            return None;
        }
        mat.swap(col, pivot);
        let pv = mat[col][col];
        let pivot_row = mat[col].clone();
        for (r, row) in mat.iter_mut().enumerate() {
            if r == col {
                continue;
            }
            let factor = row[col] / pv;
            for (x, pc) in row[col..=m].iter_mut().zip(&pivot_row[col..=m]) {
                *x -= factor * pc;
            }
        }
    }
    Some((0..m).map(|i| mat[i][m] / mat[i][i]).collect())
}

/// Perpendicular distance from point `p` to the ray through the origin in
/// direction `w`.
pub fn perpendicular_distance(p: &[f64], w: &[f64]) -> f64 {
    let ww: f64 = w.iter().map(|x| x * x).sum();
    if ww <= 0.0 {
        return p.iter().map(|x| x * x).sum::<f64>().sqrt();
    }
    let pw: f64 = p.iter().zip(w).map(|(a, b)| a * b).sum();
    let t = pw / ww;
    p.iter()
        .zip(w)
        .map(|(a, b)| {
            let d = a - t * b;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Association of one candidate: its closest reference direction and the
/// perpendicular distance to it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Association {
    /// Index into the reference-point set.
    pub ref_idx: usize,
    /// Perpendicular distance to that direction.
    pub distance: f64,
}

/// Associates every normalised point with its nearest reference direction.
pub fn associate(normalized: &[Vec<f64>], refs: &[Vec<f64>]) -> Vec<Association> {
    normalized
        .iter()
        .map(|p| {
            let mut best = Association {
                ref_idx: 0,
                distance: f64::INFINITY,
            };
            for (r, w) in refs.iter().enumerate() {
                let d = perpendicular_distance(p, w);
                if d < best.distance {
                    best = Association {
                        ref_idx: r,
                        distance: d,
                    };
                }
            }
            best
        })
        .collect()
}

/// NSGA-III niching (Deb & Jain 2014, Algorithm 4): fill `slots` survivors
/// from `last_front` given the already-selected `chosen` members.
///
/// * `candidates` — indices (into `pop`) of all members of fronts before
///   the last front (already selected);
/// * `last_front` — indices of the front that overfills the population;
/// * returns the subset of `last_front` to keep, length = `slots`.
pub fn niching_select(
    pop: &[Individual],
    chosen: &[usize],
    last_front: &[usize],
    slots: usize,
    refs: &[Vec<f64>],
    rng: &mut impl Rng,
) -> Vec<usize> {
    assert!(slots <= last_front.len());
    if slots == 0 {
        return Vec::new();
    }
    if slots == last_front.len() {
        return last_front.to_vec();
    }

    // Normalise the union so chosen and last-front share a frame.
    let mut union: Vec<usize> = chosen.to_vec();
    union.extend_from_slice(last_front);
    let normalized = normalize(pop, &union);
    let assoc = associate(&normalized, refs);

    // Niche counts from the chosen members.
    let mut niche_count = vec![0usize; refs.len()];
    for a in &assoc[..chosen.len()] {
        niche_count[a.ref_idx] += 1;
    }

    // Candidates from the last front grouped by their reference direction.
    let mut by_ref: Vec<Vec<usize>> = vec![Vec::new(); refs.len()]; // positions in last_front
    for (pos, a) in assoc[chosen.len()..].iter().enumerate() {
        by_ref[a.ref_idx].push(pos);
    }

    let mut selected = Vec::with_capacity(slots);
    let mut excluded_refs = vec![false; refs.len()];
    while selected.len() < slots {
        // Reference direction with minimal niche count among those that
        // still have last-front candidates.
        let mut min_count = usize::MAX;
        let mut min_refs: Vec<usize> = Vec::new();
        for (r, count) in niche_count.iter().enumerate() {
            if excluded_refs[r] || by_ref[r].is_empty() {
                continue;
            }
            match count.cmp(&min_count) {
                std::cmp::Ordering::Less => {
                    min_count = *count;
                    min_refs.clear();
                    min_refs.push(r);
                }
                std::cmp::Ordering::Equal => min_refs.push(r),
                std::cmp::Ordering::Greater => {}
            }
        }
        if min_refs.is_empty() {
            // No direction has candidates left; fill arbitrarily.
            for (pos, _) in last_front.iter().enumerate() {
                if !selected.contains(&pos) {
                    selected.push(pos);
                    if selected.len() == slots {
                        break;
                    }
                }
            }
            break;
        }
        let r = min_refs[rng.gen_range(0..min_refs.len())];
        let members = &mut by_ref[r];
        // If the niche is empty so far, take the member closest to the
        // direction; otherwise a random member.
        let pick_pos = if niche_count[r] == 0 {
            let best = members
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    assoc[chosen.len() + a]
                        .distance
                        .partial_cmp(&assoc[chosen.len() + b].distance)
                        .unwrap()
                })
                .map(|(i, _)| i)
                .expect("non-empty niche");
            best
        } else {
            rng.gen_range(0..members.len())
        };
        let member = members.swap_remove(pick_pos);
        selected.push(member);
        niche_count[r] += 1;
        let _ = &mut excluded_refs; // directions never become excluded here;
                                    // kept for symmetry with the paper's ρ=∅ exclusion
    }
    selected.truncate(slots);
    selected.into_iter().map(|pos| last_front[pos]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ind(obj: Vec<f64>) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.set_evaluation(Evaluation::feasible(obj));
        i
    }

    #[test]
    fn normalize_maps_extremes_near_unit_axes() {
        let pop = vec![
            ind(vec![0.0, 10.0]),
            ind(vec![10.0, 0.0]),
            ind(vec![5.0, 5.0]),
        ];
        let n = normalize(&pop, &[0, 1, 2]);
        // Ideal is (0,0); extremes are (0,10) and (10,0); intercepts 10,10.
        assert!((n[0][0] - 0.0).abs() < 1e-9 && (n[0][1] - 1.0).abs() < 1e-9);
        assert!((n[1][0] - 1.0).abs() < 1e-9 && (n[1][1] - 0.0).abs() < 1e-9);
        assert!((n[2][0] - 0.5).abs() < 1e-9 && (n[2][1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normalize_handles_degenerate_front() {
        // All candidates identical: intercept solve fails, nadir fallback.
        let pop = vec![ind(vec![3.0, 3.0]), ind(vec![3.0, 3.0])];
        let n = normalize(&pop, &[0, 1]);
        assert!(n.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn perpendicular_distance_basics() {
        // Point on the ray → 0.
        assert!(perpendicular_distance(&[2.0, 2.0], &[1.0, 1.0]) < 1e-12);
        // Unit point vs orthogonal axis → full norm.
        assert!((perpendicular_distance(&[0.0, 1.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        // 45° from axis.
        let d = perpendicular_distance(&[1.0, 1.0], &[1.0, 0.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn associate_picks_nearest_direction() {
        let refs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let pts = vec![vec![0.9, 0.1], vec![0.1, 0.9], vec![0.5, 0.5]];
        let assoc = associate(&pts, &refs);
        assert_eq!(assoc[0].ref_idx, 0);
        assert_eq!(assoc[1].ref_idx, 1);
        assert_eq!(assoc[2].ref_idx, 2);
        assert!(assoc[2].distance < 1e-12);
    }

    #[test]
    fn niching_fills_exact_slot_count_without_duplicates() {
        let pop: Vec<Individual> = (0..10)
            .map(|i| {
                let x = i as f64 / 9.0;
                ind(vec![x, 1.0 - x])
            })
            .collect();
        let refs = crate::refpoints::das_dennis(2, 4);
        let mut rng = SmallRng::seed_from_u64(9);
        let chosen: Vec<usize> = vec![];
        let last: Vec<usize> = (0..10).collect();
        let kept = niching_select(&pop, &chosen, &last, 4, &refs, &mut rng);
        assert_eq!(kept.len(), 4);
        let mut dedup = kept.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "no duplicates");
    }

    #[test]
    fn niching_prefers_empty_niches() {
        // Chosen members crowd direction 0; the last front offers one point
        // near direction 0 and one near direction 1. The direction-1 point
        // must be selected first.
        let pop = vec![
            ind(vec![1.0, 0.05]), // chosen, near axis 0
            ind(vec![0.95, 0.1]), // chosen, near axis 0
            ind(vec![0.9, 0.15]), // last front, near axis 0
            ind(vec![0.05, 1.0]), // last front, near axis 1
        ];
        let refs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut rng = SmallRng::seed_from_u64(4);
        let kept = niching_select(&pop, &[0, 1], &[2, 3], 1, &refs, &mut rng);
        assert_eq!(kept, vec![3], "empty niche must win");
    }

    #[test]
    fn niching_zero_slots_and_full_front_edges() {
        let pop = vec![ind(vec![1.0, 0.0]), ind(vec![0.0, 1.0])];
        let refs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(niching_select(&pop, &[], &[0, 1], 0, &refs, &mut rng).is_empty());
        assert_eq!(
            niching_select(&pop, &[], &[0, 1], 2, &refs, &mut rng),
            vec![0, 1]
        );
    }

    #[test]
    fn solve_intercepts_identity_case() {
        let translated = vec![vec![2.0, 0.0], vec![0.0, 4.0]];
        let a = solve_intercepts(&translated, &[0, 1], 2).unwrap();
        // Plane x/2 + y/4 = 1 → a = (1/2, 1/4).
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.25).abs() < 1e-12);
    }
}
