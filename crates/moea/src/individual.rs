//! Individuals and populations.

use crate::problem::Evaluation;

/// One member of the population: genome plus cached evaluation and the
/// bookkeeping fields the selection machinery fills in.
#[derive(Clone, Debug)]
pub struct Individual {
    /// Real-coded genome.
    pub genes: Vec<f64>,
    /// Objective values (minimised).
    pub objectives: Vec<f64>,
    /// Constraint-violation degree (0 = feasible).
    pub violation: f64,
    /// Non-domination rank (0 = first front), set by the sorter.
    pub rank: usize,
    /// Crowding distance (NSGA-II) — `f64::INFINITY` on boundaries.
    pub crowding: f64,
    /// Reference-direction niche (NSGA-III / U-NSGA-III); `usize::MAX`
    /// until the first environmental selection assigns it.
    pub niche: usize,
    /// Perpendicular distance to the niche direction.
    pub niche_distance: f64,
}

impl Individual {
    /// Creates an unevaluated individual (objectives empty).
    pub fn new(genes: Vec<f64>) -> Self {
        Self {
            genes,
            objectives: Vec::new(),
            violation: 0.0,
            rank: usize::MAX,
            crowding: 0.0,
            niche: usize::MAX,
            niche_distance: f64::INFINITY,
        }
    }

    /// Stores an evaluation result.
    pub fn set_evaluation(&mut self, eval: Evaluation) {
        self.objectives = eval.objectives;
        self.violation = eval.violation;
    }

    /// `true` when the cached evaluation is feasible.
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }

    /// `true` when the individual has been evaluated.
    #[inline]
    pub fn is_evaluated(&self) -> bool {
        !self.objectives.is_empty()
    }

    /// Constraint-domination (Deb 2002): a feasible individual beats any
    /// infeasible one; two infeasibles compare by violation; two feasibles
    /// compare by Pareto dominance over objectives.
    pub fn constrained_dominates(&self, other: &Individual) -> bool {
        match (self.is_feasible(), other.is_feasible()) {
            (true, false) => true,
            (false, true) => false,
            (false, false) => self.violation < other.violation,
            (true, true) => dominates(&self.objectives, &other.objectives),
        }
    }
}

/// Pure Pareto dominance over minimised objective vectors.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(obj: Vec<f64>, violation: f64) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.set_evaluation(Evaluation {
            objectives: obj,
            violation,
        });
        i
    }

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[2.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: no strict gain
    }

    #[test]
    fn feasible_always_beats_infeasible() {
        let good = ind(vec![100.0, 100.0], 0.0);
        let bad = ind(vec![0.0, 0.0], 0.1);
        assert!(good.constrained_dominates(&bad));
        assert!(!bad.constrained_dominates(&good));
    }

    #[test]
    fn infeasibles_compare_by_violation() {
        let less = ind(vec![5.0, 5.0], 1.0);
        let more = ind(vec![1.0, 1.0], 2.0);
        assert!(less.constrained_dominates(&more));
        assert!(!more.constrained_dominates(&less));
    }

    #[test]
    fn feasibles_compare_by_pareto() {
        let a = ind(vec![1.0, 2.0], 0.0);
        let b = ind(vec![2.0, 3.0], 0.0);
        let c = ind(vec![3.0, 1.0], 0.0);
        assert!(a.constrained_dominates(&b));
        assert!(!a.constrained_dominates(&c));
        assert!(!c.constrained_dominates(&a));
    }

    #[test]
    fn new_individual_is_unevaluated() {
        let i = Individual::new(vec![1.0, 2.0]);
        assert!(!i.is_evaluated());
        assert_eq!(i.rank, usize::MAX);
    }
}
