//! The generational engine driving NSGA-II and NSGA-III, with the repair
//! hook of the paper's Fig. 4 ("NSGA-III enhanced with tabu search in
//! reproduction process") and rayon-parallel population evaluation.

use crate::crowding::assign_crowding_distance;
use crate::individual::Individual;
use crate::nsga3::{associate, niching_select, normalize};
use crate::operators::{
    polynomial_mutation, reset_mutation, sbx, uniform_crossover, PmParams, SbxParams,
};
use crate::problem::{clamp_genes, MoeaProblem};
use crate::refpoints::{das_dennis, divisions_for};
use crate::selection::{tournament_nsga2, tournament_nsga3, tournament_unsga3};
use crate::sort::fast_non_dominated_sort;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Which elitist selection the engine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// NSGA-II: rank + crowding distance (Deb et al. 2002).
    Nsga2,
    /// NSGA-III: rank + reference-point niching (Deb & Jain 2014).
    Nsga3,
    /// U-NSGA-III (Seada & Deb 2014, the paper's ref. 28): NSGA-III
    /// environmental selection plus a niching-based mating tournament.
    UNsga3,
}

/// Constraint-handling strategy, mirroring the paper's list of methods
/// ("excluding the individuals that are not in line with the constraints;
/// fixing faulty individuals through a repair process; …").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairMode {
    /// No repair (unmodified NSGA-II / NSGA-III); constraint-domination
    /// only.
    Off,
    /// Method 1 — exclusion: infeasible offspring are discarded and
    /// regenerated (bounded retries). The paper finds this "inefficient
    /// because it excludes too many individuals"; kept for the ablation.
    Exclude,
    /// Method 2, wired at parent selection (the literal Fig. 4 pipeline).
    Parents,
    /// Method 2, wired after variation.
    Offspring,
    /// Method 2 at both points (the configuration the paper's hybrid
    /// effectively needs for a violation-free final population).
    Both,
}

/// Variation-operator family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operators {
    /// SBX + polynomial mutation — the paper's "SBX and PM standard".
    RealCoded,
    /// Uniform crossover + random-reset mutation — the classic choice for
    /// integer genomes (server ids); compared in `ablation_operators`.
    IntegerStyle,
}

/// Engine configuration. `paper_defaults` reproduces Table III.
#[derive(Clone, Debug)]
pub struct NsgaConfig {
    /// Population size (Table III: 100).
    pub population_size: usize,
    /// Evaluation budget (Table III: 10 000).
    pub max_evaluations: usize,
    /// SBX parameters (Table III: rate 0.70, DI 15).
    pub sbx: SbxParams,
    /// PM parameters (Table III: rate 0.20, DI 15).
    pub pm: PmParams,
    /// Selection variant.
    pub variant: Variant,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Evaluate populations in parallel with rayon.
    pub parallel_eval: bool,
    /// When the repair hook is invoked.
    pub repair_mode: RepairMode,
    /// Optional wall-clock budget; the run stops at the end of the
    /// generation that exceeds it (the paper targets responses < 2 min).
    pub deadline: Option<Duration>,
    /// Variation-operator family (the paper uses [`Operators::RealCoded`]).
    pub operators: Operators,
    /// Genomes injected into the initial population (warm starts — e.g.
    /// the running allocation `X^t`, so the search explores around the
    /// incumbent and the migration term stays meaningful). Extra genomes
    /// beyond the population size are ignored; each is clamped to bounds.
    pub seeds: Vec<Vec<f64>>,
}

impl NsgaConfig {
    /// The paper's Table III settings for the given variant.
    pub fn paper_defaults(variant: Variant) -> Self {
        Self {
            population_size: 100,
            max_evaluations: 10_000,
            sbx: SbxParams {
                rate: 0.70,
                distribution_index: 15.0,
            },
            pm: PmParams {
                rate: 0.20,
                distribution_index: 15.0,
            },
            variant,
            seed: 0,
            parallel_eval: true,
            repair_mode: RepairMode::Off,
            deadline: None,
            operators: Operators::RealCoded,
            seeds: Vec::new(),
        }
    }

    /// Same settings with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same settings with a repair mode.
    pub fn with_repair(mut self, mode: RepairMode) -> Self {
        self.repair_mode = mode;
        self
    }
}

/// Per-generation statistics for convergence analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenStats {
    /// Generation index.
    pub generation: usize,
    /// Evaluations consumed so far.
    pub evaluations: usize,
    /// Number of feasible individuals in the population.
    pub feasible: usize,
    /// Minimum violation in the population.
    pub min_violation: f64,
    /// Best (lowest) sum of objectives among feasible individuals, if any.
    pub best_feasible_total: Option<f64>,
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct MoeaResult {
    /// Final population, non-dominated-sorted (rank field set).
    pub population: Vec<Individual>,
    /// Total number of problem evaluations performed.
    pub evaluations: usize,
    /// Number of generations completed.
    pub generations: usize,
    /// Per-generation convergence history.
    pub history: Vec<GenStats>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MoeaResult {
    /// The first (best) non-domination front.
    pub fn first_front(&self) -> Vec<&Individual> {
        self.population.iter().filter(|i| i.rank == 0).collect()
    }

    /// Feasible members of the first front.
    pub fn feasible_front(&self) -> Vec<&Individual> {
        self.population
            .iter()
            .filter(|i| i.rank == 0 && i.is_feasible())
            .collect()
    }

    /// The individual closest (Euclidean, on raw objectives) to the ideal
    /// point of the final population — the paper's decision rule: "we
    /// choose the solution that is found closer to the ideal point".
    /// Feasible individuals are preferred; among infeasibles the least
    /// violating wins.
    pub fn closest_to_ideal(&self) -> Option<&Individual> {
        let candidates: Vec<&Individual> = {
            let feas: Vec<&Individual> =
                self.population.iter().filter(|i| i.is_feasible()).collect();
            if feas.is_empty() {
                // Least-violating fallback.
                let min_v = self
                    .population
                    .iter()
                    .map(|i| i.violation)
                    .fold(f64::INFINITY, f64::min);
                self.population
                    .iter()
                    .filter(|i| i.violation <= min_v)
                    .collect()
            } else {
                feas
            }
        };
        let first = candidates.first()?;
        let m = first.objectives.len();
        let mut ideal = vec![f64::INFINITY; m];
        for c in &candidates {
            for (i, &o) in c.objectives.iter().enumerate() {
                ideal[i] = ideal[i].min(o);
            }
        }
        candidates.into_iter().min_by(|a, b| {
            let da: f64 = a
                .objectives
                .iter()
                .zip(&ideal)
                .map(|(o, i)| (o - i) * (o - i))
                .sum();
            let db: f64 = b
                .objectives
                .iter()
                .zip(&ideal)
                .map(|(o, i)| (o - i) * (o - i))
                .sum();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// A constraint-repair operator (the paper's tabu search, or a CP-based
/// fixer). Returns `true` when the genome was modified.
pub trait Repair: Sync {
    /// Attempts to make `genes` feasible in place.
    fn repair(&self, genes: &mut [f64]) -> bool;
}

/// Blanket impl so closures can serve as repair operators.
impl<F: Fn(&mut [f64]) -> bool + Sync> Repair for F {
    fn repair(&self, genes: &mut [f64]) -> bool {
        self(genes)
    }
}

fn evaluate_all<P: MoeaProblem>(problem: &P, pop: &mut [Individual], parallel: bool) -> usize {
    let todo: Vec<usize> = (0..pop.len()).filter(|&i| !pop[i].is_evaluated()).collect();
    if parallel && todo.len() > 1 {
        let evals: Vec<_> = todo
            .par_iter()
            .map(|&i| problem.evaluate(&pop[i].genes))
            .collect();
        for (&i, e) in todo.iter().zip(evals) {
            pop[i].set_evaluation(e);
        }
    } else {
        for &i in &todo {
            let e = problem.evaluate(&pop[i].genes);
            pop[i].set_evaluation(e);
        }
    }
    todo.len()
}

fn random_genome<P: MoeaProblem>(problem: &P, rng: &mut impl Rng) -> Vec<f64> {
    (0..problem.n_vars())
        .map(|i| {
            let (lo, hi) = problem.bounds(i);
            rng.gen_range(lo..hi)
        })
        .collect()
}

fn stats(pop: &[Individual], generation: usize, evaluations: usize) -> GenStats {
    let feasible = pop.iter().filter(|i| i.is_feasible()).count();
    let min_violation = pop
        .iter()
        .map(|i| i.violation)
        .fold(f64::INFINITY, f64::min);
    let best_feasible_total = pop
        .iter()
        .filter(|i| i.is_feasible())
        .map(|i| i.objectives.iter().sum::<f64>())
        .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    GenStats {
        generation,
        evaluations,
        feasible,
        min_violation,
        best_feasible_total,
    }
}

/// Runs the configured NSGA variant on `problem`, with an optional repair
/// operator wired per `config.repair_mode` (the paper's Figs. 3–4 pipeline).
pub fn run<P: MoeaProblem>(
    problem: &P,
    config: &NsgaConfig,
    repair: Option<&dyn Repair>,
) -> MoeaResult {
    assert!(config.population_size >= 4, "population too small");
    let variant_label = match config.variant {
        Variant::Nsga2 => "nsga2",
        Variant::Nsga3 => "nsga3",
        Variant::UNsga3 => "unsga3",
    };
    let mut run_span = cpo_obs::span!("moea.run", variant = variant_label);
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = config.population_size;

    // Reference directions for NSGA-III / U-NSGA-III sized to the population.
    let uses_refs = matches!(config.variant, Variant::Nsga3 | Variant::UNsga3);
    let refs = if uses_refs {
        let d = divisions_for(problem.n_objectives(), n);
        das_dennis(problem.n_objectives(), d)
    } else {
        Vec::new()
    };

    // Initial population: caller-provided warm starts first, random fill
    // after (repaired when a repair operator is active — Fig. 4 treats
    // any invalid individual entering reproduction).
    let mut pop: Vec<Individual> = Vec::with_capacity(n);
    for seed_genes in config.seeds.iter().take(n) {
        assert_eq!(
            seed_genes.len(),
            problem.n_vars(),
            "warm-start genome has wrong arity"
        );
        let mut genes = seed_genes.clone();
        clamp_genes(problem, &mut genes);
        pop.push(Individual::new(genes));
    }
    while pop.len() < n {
        let mut genes = random_genome(problem, &mut rng);
        if let (Some(r), true) = (repair, config.repair_mode != RepairMode::Off) {
            r.repair(&mut genes);
            clamp_genes(problem, &mut genes);
        }
        pop.push(Individual::new(genes));
    }

    let mut evaluations = evaluate_all(problem, &mut pop, config.parallel_eval);
    let fronts = fast_non_dominated_sort(&mut pop);
    if config.variant == Variant::Nsga2 {
        for f in &fronts {
            assign_crowding_distance(&mut pop, f);
        }
    }

    let mut history = vec![stats(&pop, 0, evaluations)];
    let mut generation = 0usize;

    while evaluations < config.max_evaluations {
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                break;
            }
        }
        generation += 1;
        let mut gen_span = cpo_obs::span!("nsga3.generation", gen = generation as u64);
        let evals_before = evaluations;

        // --- Mating: tournaments, optional parent repair, SBX, PM. ---
        let mut offspring: Vec<Individual> = Vec::with_capacity(n);
        // Method-1 exclusion budget: at most 10× the population of extra
        // attempts per generation, after which infeasible offspring are
        // admitted anyway (otherwise hard instances would never fill a
        // generation — the paper's week-long-run pathology).
        let mut exclusion_budget: usize = if config.repair_mode == RepairMode::Exclude {
            n * 10
        } else {
            0
        };
        while offspring.len() < n {
            let (pa, pb) = match config.variant {
                Variant::Nsga2 => (
                    tournament_nsga2(&pop, &mut rng),
                    tournament_nsga2(&pop, &mut rng),
                ),
                Variant::Nsga3 => (
                    tournament_nsga3(&pop, &mut rng),
                    tournament_nsga3(&pop, &mut rng),
                ),
                Variant::UNsga3 => (
                    tournament_unsga3(&pop, &mut rng),
                    tournament_unsga3(&pop, &mut rng),
                ),
            };
            let mut g1 = pop[pa].genes.clone();
            let mut g2 = pop[pb].genes.clone();
            // Fig. 4: "if the two selected parents do not respect users
            // constraints, then they are treated by the tabu search".
            if matches!(config.repair_mode, RepairMode::Parents | RepairMode::Both) {
                if let Some(r) = repair {
                    if !pop[pa].is_feasible() {
                        r.repair(&mut g1);
                        clamp_genes(problem, &mut g1);
                    }
                    if !pop[pb].is_feasible() {
                        r.repair(&mut g2);
                        clamp_genes(problem, &mut g2);
                    }
                }
            }
            let (mut c1, mut c2) = match config.operators {
                Operators::RealCoded => sbx(problem, config.sbx, &g1, &g2, &mut rng),
                Operators::IntegerStyle => uniform_crossover(config.sbx.rate, &g1, &g2, &mut rng),
            };
            match config.operators {
                Operators::RealCoded => {
                    polynomial_mutation(problem, config.pm, &mut c1, &mut rng);
                    polynomial_mutation(problem, config.pm, &mut c2, &mut rng);
                }
                Operators::IntegerStyle => {
                    reset_mutation(problem, config.pm.rate, &mut c1, &mut rng);
                    reset_mutation(problem, config.pm.rate, &mut c2, &mut rng);
                }
            }
            clamp_genes(problem, &mut c1);
            clamp_genes(problem, &mut c2);
            if matches!(config.repair_mode, RepairMode::Offspring | RepairMode::Both) {
                if let Some(r) = repair {
                    r.repair(&mut c1);
                    r.repair(&mut c2);
                    clamp_genes(problem, &mut c1);
                    clamp_genes(problem, &mut c2);
                }
            }
            if config.repair_mode == RepairMode::Exclude && exclusion_budget > 0 {
                // Evaluate the children now and drop the infeasible ones.
                for child in [c1, c2] {
                    if offspring.len() == n {
                        break;
                    }
                    let eval = problem.evaluate(&child);
                    evaluations += 1;
                    if eval.is_feasible() || exclusion_budget == 0 {
                        let mut ind = Individual::new(child);
                        ind.set_evaluation(eval);
                        offspring.push(ind);
                    } else {
                        exclusion_budget -= 1;
                    }
                }
                continue;
            }
            offspring.push(Individual::new(c1));
            if offspring.len() < n {
                offspring.push(Individual::new(c2));
            }
        }
        evaluations += evaluate_all(problem, &mut offspring, config.parallel_eval);

        // --- Environmental selection on parents ∪ offspring. ---
        let mut combined = pop;
        combined.append(&mut offspring);
        let fronts = fast_non_dominated_sort(&mut combined);

        let mut survivors: Vec<usize> = Vec::with_capacity(n);
        let mut last_front: Option<Vec<usize>> = None;
        for front in &fronts {
            if survivors.len() + front.len() <= n {
                survivors.extend_from_slice(front);
            } else {
                last_front = Some(front.clone());
                break;
            }
        }
        if let Some(front) = last_front {
            let slots = n - survivors.len();
            match config.variant {
                Variant::Nsga2 => {
                    assign_crowding_distance(&mut combined, &front);
                    let mut ranked = front;
                    ranked.sort_by(|&a, &b| {
                        combined[b]
                            .crowding
                            .partial_cmp(&combined[a].crowding)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    survivors.extend(ranked.into_iter().take(slots));
                }
                Variant::Nsga3 | Variant::UNsga3 => {
                    let kept =
                        niching_select(&combined, &survivors, &front, slots, &refs, &mut rng);
                    survivors.extend(kept);
                }
            }
        }
        let mut next: Vec<Individual> =
            survivors.into_iter().map(|i| combined[i].clone()).collect();
        // Re-rank the survivors (ranks referenced the combined pool).
        let fronts = fast_non_dominated_sort(&mut next);
        if config.variant == Variant::Nsga2 {
            for f in &fronts {
                assign_crowding_distance(&mut next, f);
            }
        }
        // U-NSGA-III's mating tournament needs each survivor's niche.
        if config.variant == Variant::UNsga3 && !next.is_empty() {
            let candidates: Vec<usize> = (0..next.len()).collect();
            let normalized = normalize(&next, &candidates);
            for (ind, assoc) in next.iter_mut().zip(associate(&normalized, &refs)) {
                ind.niche = assoc.ref_idx;
                ind.niche_distance = assoc.distance;
            }
        }
        pop = next;
        let gen_stats = stats(&pop, generation, evaluations);
        gen_span
            .field("feasible", gen_stats.feasible)
            .field("evaluations", evaluations);
        cpo_obs::counter_add("moea.evaluations", (evaluations - evals_before) as u64);
        history.push(gen_stats);
    }

    run_span
        .field("generations", generation)
        .field("evaluations", evaluations);
    MoeaResult {
        population: pop,
        evaluations,
        generations: generation,
        history,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::{ConstrainedSum, Dtlz2, Sch};
    use crate::problem::MoeaProblem;

    fn small_config(variant: Variant) -> NsgaConfig {
        NsgaConfig {
            population_size: 40,
            max_evaluations: 2_000,
            parallel_eval: false,
            ..NsgaConfig::paper_defaults(variant)
        }
    }

    #[test]
    fn nsga2_converges_on_sch() {
        let result = run(&Sch, &small_config(Variant::Nsga2), None);
        // Pareto front: x in [0,2] → f1+f2 ≤ 4 (min at crossing ~2).
        let front = result.first_front();
        assert!(!front.is_empty());
        for ind in &front {
            let x = ind.genes[0];
            assert!(
                (-0.3..=2.3).contains(&x),
                "front member off the Pareto set: x = {x}"
            );
        }
        assert!(result.evaluations >= 2_000);
    }

    #[test]
    fn nsga3_converges_on_dtlz2_sphere() {
        let p = Dtlz2 { n_vars: 7 };
        let result = run(&p, &small_config(Variant::Nsga3), None);
        let front = result.first_front();
        assert!(!front.is_empty());
        let mean_norm: f64 = front
            .iter()
            .map(|i| i.objectives.iter().map(|f| f * f).sum::<f64>())
            .sum::<f64>()
            / front.len() as f64;
        assert!(
            (0.8..=1.6).contains(&mean_norm),
            "front should approach the unit sphere, mean ||f||² = {mean_norm}"
        );
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let a = run(&Sch, &small_config(Variant::Nsga2), None);
        let b = run(&Sch, &small_config(Variant::Nsga2), None);
        let ga: Vec<f64> = a.population.iter().map(|i| i.genes[0]).collect();
        let gb: Vec<f64> = b.population.iter().map(|i| i.genes[0]).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&Sch, &small_config(Variant::Nsga2), None);
        let b = run(&Sch, &small_config(Variant::Nsga2).with_seed(99), None);
        let ga: Vec<f64> = a.population.iter().map(|i| i.genes[0]).collect();
        let gb: Vec<f64> = b.population.iter().map(|i| i.genes[0]).collect();
        assert_ne!(ga, gb);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut cfg = small_config(Variant::Nsga2);
        let seq = run(&Sch, &cfg, None);
        cfg.parallel_eval = true;
        let par = run(&Sch, &cfg, None);
        let gs: Vec<f64> = seq.population.iter().map(|i| i.genes[0]).collect();
        let gp: Vec<f64> = par.population.iter().map(|i| i.genes[0]).collect();
        assert_eq!(gs, gp, "evaluation order must not affect the run");
    }

    #[test]
    fn repair_offspring_forces_feasibility() {
        // Repair: project onto the constraint x + y ≥ 1.
        let fix = |genes: &mut [f64]| -> bool {
            let s = genes[0] + genes[1];
            if s < 1.0 {
                let deficit = (1.0 - s) / 2.0;
                genes[0] = (genes[0] + deficit).min(1.0);
                genes[1] = (genes[1] + deficit).min(1.0);
                true
            } else {
                false
            }
        };
        let cfg = small_config(Variant::Nsga3).with_repair(RepairMode::Both);
        let result = run(&ConstrainedSum, &cfg, Some(&fix));
        let feasible = result.population.iter().filter(|i| i.is_feasible()).count();
        assert!(
            feasible >= result.population.len() * 9 / 10,
            "repair should keep ≥90% feasible, got {feasible}/{}",
            result.population.len()
        );
    }

    #[test]
    fn exclusion_mode_fills_generations_with_feasibles_when_easy() {
        let cfg = small_config(Variant::Nsga2).with_repair(RepairMode::Exclude);
        let result = run(&ConstrainedSum, &cfg, None);
        // On an easy constraint, exclusion yields an (almost) fully
        // feasible population.
        let feasible = result.population.iter().filter(|i| i.is_feasible()).count();
        assert!(
            feasible >= result.population.len() * 9 / 10,
            "exclusion should keep feasibles: {feasible}/{}",
            result.population.len()
        );
        // Discarded evaluations still count against the budget.
        assert!(result.evaluations >= cfg.max_evaluations);
    }

    #[test]
    fn exclusion_mode_terminates_on_hard_instances() {
        // A constraint no random/SBX child will ever satisfy exactly:
        // x + y ≥ 1.999 within [0,1]² is a sliver. The exclusion budget
        // must cap retries so the run still finishes.
        struct Sliver;
        impl MoeaProblem for Sliver {
            fn n_vars(&self) -> usize {
                2
            }
            fn n_objectives(&self) -> usize {
                2
            }
            fn bounds(&self, _: usize) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn evaluate(&self, g: &[f64]) -> crate::problem::Evaluation {
                crate::problem::Evaluation {
                    objectives: vec![g[0], g[1]],
                    violation: (1.999 - (g[0] + g[1])).max(0.0),
                }
            }
        }
        let cfg = NsgaConfig {
            population_size: 16,
            max_evaluations: 800,
            parallel_eval: false,
            repair_mode: RepairMode::Exclude,
            ..NsgaConfig::paper_defaults(Variant::Nsga2)
        };
        let result = run(&Sliver, &cfg, None);
        assert!(
            result.generations >= 1,
            "the run must make progress despite exclusion"
        );
    }

    #[test]
    fn no_repair_leaves_violations_on_hard_start() {
        // Without repair the constrained problem still finds feasibles via
        // constraint domination, but typically later; verify the engine
        // reports violations in the history's early generations.
        let cfg = small_config(Variant::Nsga2);
        let result = run(&ConstrainedSum, &cfg, None);
        assert!(result.history[0].feasible <= result.population.len());
        assert!(result.history.last().unwrap().feasible > 0);
    }

    #[test]
    fn closest_to_ideal_prefers_feasible() {
        let result = run(&ConstrainedSum, &small_config(Variant::Nsga2), None);
        let best = result.closest_to_ideal().expect("population non-empty");
        assert!(best.is_feasible());
        // Ideal-point solutions cluster around the x + y = 1 boundary.
        let s = best.objectives.iter().sum::<f64>();
        assert!(s < 1.3, "near-boundary solution expected, got sum {s}");
    }

    #[test]
    fn deadline_stops_early() {
        let mut cfg = small_config(Variant::Nsga2);
        cfg.max_evaluations = usize::MAX / 2;
        cfg.deadline = Some(Duration::from_millis(50));
        let result = run(&Sch, &cfg, None);
        assert!(result.elapsed < Duration::from_secs(5));
        assert!(result.evaluations < usize::MAX / 2);
    }

    #[test]
    fn warm_start_seeds_enter_the_population() {
        // Seed the known optimum of SCH's f1: x = 0. With a tiny budget
        // the seeded run must already contain near-zero f1 members.
        let mut cfg = small_config(Variant::Nsga2);
        cfg.max_evaluations = cfg.population_size; // initial evaluation only
        cfg.seeds = vec![vec![0.0], vec![2.0]];
        let result = run(&Sch, &cfg, None);
        let best_f1 = result
            .population
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_f1 < 1e-9,
            "seeded optimum must survive, best f1 = {best_f1}"
        );
    }

    #[test]
    fn warm_start_clamps_out_of_bounds_seeds() {
        let mut cfg = small_config(Variant::Nsga2);
        cfg.max_evaluations = cfg.population_size;
        cfg.seeds = vec![vec![1e9]];
        let result = run(&Sch, &cfg, None);
        assert!(result.population.iter().all(|i| i.genes[0] <= 1e3 + 1e-9));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn warm_start_rejects_wrong_arity() {
        let mut cfg = small_config(Variant::Nsga2);
        cfg.seeds = vec![vec![0.0, 1.0]];
        let _ = run(&Sch, &cfg, None);
    }

    #[test]
    fn history_tracks_generations() {
        let result = run(&Sch, &small_config(Variant::Nsga2), None);
        assert_eq!(result.history.len(), result.generations + 1);
        assert!(result
            .history
            .windows(2)
            .all(|w| w[0].evaluations < w[1].evaluations));
    }

    #[test]
    fn unsga3_converges_on_dtlz2_sphere() {
        let p = Dtlz2 { n_vars: 7 };
        let result = run(&p, &small_config(Variant::UNsga3), None);
        let front = result.first_front();
        assert!(!front.is_empty());
        let mean_norm: f64 = front
            .iter()
            .map(|i| i.objectives.iter().map(|f| f * f).sum::<f64>())
            .sum::<f64>()
            / front.len() as f64;
        assert!(
            (0.8..=1.6).contains(&mean_norm),
            "U-NSGA-III front should approach the unit sphere, got {mean_norm}"
        );
        // Niches must have been assigned for the mating tournament.
        assert!(result.population.iter().any(|i| i.niche != usize::MAX));
    }

    #[test]
    fn unsga3_is_deterministic() {
        let p = Dtlz2 { n_vars: 7 };
        let a = run(&p, &small_config(Variant::UNsga3), None);
        let b = run(&p, &small_config(Variant::UNsga3), None);
        let ga: Vec<f64> = a.population.iter().map(|i| i.genes[0]).collect();
        let gb: Vec<f64> = b.population.iter().map(|i| i.genes[0]).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn integer_style_operators_also_converge() {
        let mut cfg = small_config(Variant::Nsga2);
        cfg.operators = Operators::IntegerStyle;
        let result = run(&Sch, &cfg, None);
        let front = result.first_front();
        assert!(!front.is_empty());
        for ind in &front {
            let x = ind.genes[0];
            assert!((-5.0..=7.0).contains(&x), "front member far off: x = {x}");
        }
    }

    #[test]
    fn table3_defaults_are_exposed() {
        let cfg = NsgaConfig::paper_defaults(Variant::Nsga3);
        assert_eq!(cfg.population_size, 100);
        assert_eq!(cfg.max_evaluations, 10_000);
        assert_eq!(cfg.sbx.rate, 0.70);
        assert_eq!(cfg.sbx.distribution_index, 15.0);
        assert_eq!(cfg.pm.rate, 0.20);
        assert_eq!(cfg.pm.distribution_index, 15.0);
    }
}
