//! Crowding-distance assignment (NSGA-II, Deb et al. 2002 §III-B).

use crate::individual::Individual;

/// Assigns crowding distances to the individuals of one front (given by
/// indices into `pop`). Boundary solutions get `f64::INFINITY`.
pub fn assign_crowding_distance(pop: &mut [Individual], front: &[usize]) {
    let l = front.len();
    for &i in front {
        pop[i].crowding = 0.0;
    }
    if l <= 2 {
        for &i in front {
            pop[i].crowding = f64::INFINITY;
        }
        return;
    }
    let m = pop[front[0]].objectives.len();
    let mut order: Vec<usize> = front.to_vec();
    for obj in 0..m {
        order.sort_by(|&a, &b| {
            pop[a].objectives[obj]
                .partial_cmp(&pop[b].objectives[obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let fmin = pop[order[0]].objectives[obj];
        let fmax = pop[order[l - 1]].objectives[obj];
        pop[order[0]].crowding = f64::INFINITY;
        pop[order[l - 1]].crowding = f64::INFINITY;
        let span = fmax - fmin;
        if span <= 0.0 {
            continue; // degenerate objective: contributes nothing
        }
        for w in 1..l - 1 {
            let prev = pop[order[w - 1]].objectives[obj];
            let next = pop[order[w + 1]].objectives[obj];
            let idx = order[w];
            if pop[idx].crowding.is_finite() {
                pop[idx].crowding += (next - prev) / span;
            }
        }
    }
}

/// The crowded-comparison operator `≺_n`: lower rank wins; equal rank →
/// larger crowding distance wins. Returns `true` when `a` is preferred.
pub fn crowded_less(a: &Individual, b: &Individual) -> bool {
    a.rank < b.rank || (a.rank == b.rank && a.crowding > b.crowding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    fn ind(obj: Vec<f64>) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.set_evaluation(Evaluation::feasible(obj));
        i
    }

    #[test]
    fn boundaries_get_infinite_distance() {
        let mut pop = vec![
            ind(vec![0.0, 3.0]),
            ind(vec![1.0, 2.0]),
            ind(vec![2.0, 1.0]),
            ind(vec![3.0, 0.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        assign_crowding_distance(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[3].crowding.is_infinite());
        assert!(pop[1].crowding.is_finite());
        assert!(pop[2].crowding.is_finite());
    }

    #[test]
    fn evenly_spaced_interior_points_share_distance() {
        let mut pop = vec![
            ind(vec![0.0, 4.0]),
            ind(vec![1.0, 3.0]),
            ind(vec![2.0, 2.0]),
            ind(vec![3.0, 1.0]),
            ind(vec![4.0, 0.0]),
        ];
        let front: Vec<usize> = (0..5).collect();
        assign_crowding_distance(&mut pop, &front);
        assert!((pop[1].crowding - pop[2].crowding).abs() < 1e-12);
        assert!((pop[2].crowding - pop[3].crowding).abs() < 1e-12);
    }

    #[test]
    fn crowded_interior_point_scores_lower() {
        // Points: 0 and 4 are boundaries; 1-2 are close together, 3 isolated.
        let mut pop = vec![
            ind(vec![0.0, 10.0]),
            ind(vec![1.0, 9.0]),
            ind(vec![1.2, 8.8]),
            ind(vec![6.0, 4.0]),
            ind(vec![10.0, 0.0]),
        ];
        let front: Vec<usize> = (0..5).collect();
        assign_crowding_distance(&mut pop, &front);
        assert!(
            pop[3].crowding > pop[2].crowding,
            "isolated point must be preferred: {} vs {}",
            pop[3].crowding,
            pop[2].crowding
        );
    }

    #[test]
    fn small_fronts_are_all_infinite() {
        let mut pop = vec![ind(vec![1.0, 1.0]), ind(vec![2.0, 0.0])];
        assign_crowding_distance(&mut pop, &[0, 1]);
        assert!(pop[0].crowding.is_infinite() && pop[1].crowding.is_infinite());
    }

    #[test]
    fn degenerate_objective_does_not_nan() {
        let mut pop = vec![
            ind(vec![1.0, 0.0]),
            ind(vec![1.0, 1.0]),
            ind(vec![1.0, 2.0]),
        ];
        assign_crowding_distance(&mut pop, &[0, 1, 2]);
        assert!(!pop.iter().any(|i| i.crowding.is_nan()));
    }

    #[test]
    fn crowded_comparison_prefers_rank_then_distance() {
        let mut a = ind(vec![1.0, 1.0]);
        let mut b = ind(vec![2.0, 2.0]);
        a.rank = 0;
        b.rank = 1;
        assert!(crowded_less(&a, &b));
        b.rank = 0;
        a.crowding = 5.0;
        b.crowding = 1.0;
        assert!(crowded_less(&a, &b));
        assert!(!crowded_less(&b, &a));
    }
}
