//! Property-based tests of the evolutionary engine's kernels.

use cpo_moea::crowding::assign_crowding_distance;
use cpo_moea::individual::{dominates, Individual};
use cpo_moea::nsga3::{associate, normalize, perpendicular_distance};
use cpo_moea::operators::{polynomial_mutation, sbx, PmParams, SbxParams};
use cpo_moea::problem::{Evaluation, MoeaProblem};
use cpo_moea::refpoints::{das_dennis, das_dennis_count};
use cpo_moea::sort::fast_non_dominated_sort;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct BoxProblem {
    vars: usize,
    lo: f64,
    hi: f64,
}

impl MoeaProblem for BoxProblem {
    fn n_vars(&self) -> usize {
        self.vars
    }
    fn n_objectives(&self) -> usize {
        2
    }
    fn bounds(&self, _: usize) -> (f64, f64) {
        (self.lo, self.hi)
    }
    fn evaluate(&self, _g: &[f64]) -> Evaluation {
        Evaluation::feasible(vec![0.0, 0.0])
    }
}

fn population(objs: &[Vec<f64>]) -> Vec<Individual> {
    objs.iter()
        .map(|o| {
            let mut i = Individual::new(vec![0.0]);
            i.set_evaluation(Evaluation::feasible(o.clone()));
            i
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance is irreflexive and asymmetric.
    #[test]
    fn dominance_axioms(a in proptest::collection::vec(0.0_f64..10.0, 3),
                        b in proptest::collection::vec(0.0_f64..10.0, 3)) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    /// Fronts partition the population and respect dominance: nobody in a
    /// front is dominated by someone in the same or a later front.
    #[test]
    fn sort_fronts_are_a_dominance_partition(
        objs in proptest::collection::vec(proptest::collection::vec(0.0_f64..10.0, 2), 2..40)
    ) {
        let mut pop = population(&objs);
        let fronts = fast_non_dominated_sort(&mut pop);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, pop.len());
        // Rank of a dominated individual is strictly greater than the
        // rank of any individual dominating it.
        for x in 0..pop.len() {
            for y in 0..pop.len() {
                if pop[x].constrained_dominates(&pop[y]) {
                    prop_assert!(pop[x].rank < pop[y].rank,
                        "dominator rank {} !< dominated rank {}", pop[x].rank, pop[y].rank);
                }
            }
        }
    }

    /// Crowding distances are non-negative and boundary points infinite.
    #[test]
    fn crowding_distances_are_sane(
        objs in proptest::collection::vec(proptest::collection::vec(0.0_f64..10.0, 2), 3..30)
    ) {
        let mut pop = population(&objs);
        let front: Vec<usize> = (0..pop.len()).collect();
        assign_crowding_distance(&mut pop, &front);
        for i in &pop {
            prop_assert!(i.crowding >= 0.0);
            prop_assert!(!i.crowding.is_nan());
        }
    }

    /// SBX children always stay in the box and preserve the per-gene sum
    /// when far from the bounds.
    #[test]
    fn sbx_children_in_bounds(seed in 0u64..10_000, vars in 1usize..20) {
        let p = BoxProblem { vars, lo: -5.0, hi: 5.0 };
        let mut rng = SmallRng::seed_from_u64(seed);
        let p1 = vec![-4.0; vars];
        let p2 = vec![4.0; vars];
        let (c1, c2) = sbx(&p, SbxParams::default(), &p1, &p2, &mut rng);
        for g in c1.iter().chain(&c2) {
            prop_assert!((-5.0..=5.0).contains(g));
        }
    }

    /// Polynomial mutation never leaves the box.
    #[test]
    fn pm_stays_in_bounds(seed in 0u64..10_000, vars in 1usize..20) {
        let p = BoxProblem { vars, lo: 0.0, hi: 1.0 };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = vec![0.5; vars];
        polynomial_mutation(&p, PmParams { rate: 1.0, distribution_index: 15.0 }, &mut g, &mut rng);
        for v in &g {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    /// Das–Dennis lattices lie on the simplex and match the closed-form
    /// count.
    #[test]
    fn das_dennis_lattice_properties(m in 2usize..5, d in 1usize..7) {
        let pts = das_dennis(m, d);
        prop_assert_eq!(pts.len(), das_dennis_count(m, d));
        for p in &pts {
            let s: f64 = p.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    /// Perpendicular distance is zero exactly on the ray and otherwise
    /// bounded by the point's norm.
    #[test]
    fn perpendicular_distance_bounds(
        p in proptest::collection::vec(0.01_f64..10.0, 3),
        w in proptest::collection::vec(0.01_f64..1.0, 3),
    ) {
        let d = perpendicular_distance(&p, &w);
        let norm = p.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(d >= -1e-12);
        prop_assert!(d <= norm + 1e-9);
        // Scaling the point along the ray leaves distance 0.
        let t = 2.5;
        let on_ray: Vec<f64> = w.iter().map(|x| x * t).collect();
        prop_assert!(perpendicular_distance(&on_ray, &w) < 1e-9);
    }

    /// Normalisation maps candidates into the non-negative orthant and
    /// association always picks the argmin direction.
    #[test]
    fn normalize_and_associate_consistency(
        objs in proptest::collection::vec(proptest::collection::vec(0.0_f64..100.0, 3), 4..25)
    ) {
        let pop = population(&objs);
        let candidates: Vec<usize> = (0..pop.len()).collect();
        let normalized = normalize(&pop, &candidates);
        for n in &normalized {
            for v in n {
                prop_assert!(*v >= -1e-9, "normalised objective negative: {v}");
                prop_assert!(v.is_finite());
            }
        }
        let refs = das_dennis(3, 4);
        let assoc = associate(&normalized, &refs);
        for (i, a) in assoc.iter().enumerate() {
            for (r, w) in refs.iter().enumerate() {
                let d = perpendicular_distance(&normalized[i], w);
                prop_assert!(a.distance <= d + 1e-9,
                    "candidate {i}: chose ref {} at {:.6} but ref {r} is at {d:.6}",
                    a.ref_idx, a.distance);
            }
        }
    }
}
