//! # cpo-iaas — consumer-and-provider-oriented IaaS resource allocation
//!
//! A from-scratch Rust reproduction of *Ecarot, Zeghlache, Brandily,
//! "Consumer-and-Provider-oriented efficient IaaS resource allocation",
//! IEEE IPDPSW 2017*: the full allocation model (Section III), all six
//! evaluated algorithms (Section IV) including the proposed
//! **NSGA-III + tabu search** hybrid, and every substrate they need.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! name and hosts the runnable examples and the cross-crate integration
//! tests.
//!
//! | subsystem | crate | role |
//! |---|---|---|
//! | model | [`model`] | matrices, constraints, objectives (Eqs. 1–26) |
//! | topology | [`topology`] | spine-leaf datacenter fabric (Fig. 1) |
//! | scenario | [`scenario`] | seeded workload / infrastructure generation |
//! | moea | [`moea`] | NSGA-II / NSGA-III engine (Table III settings) |
//! | tabu | [`tabu`] | tabu search + the repair operator (Figs. 4–6) |
//! | cpsolve | [`cpsolve`] | constraint-programming solver (Choco substitute) |
//! | core | [`core`] | the `Allocator` trait and the six algorithms |
//! | platform | [`platform`] | cyclic time-window IaaS simulator |
//! | des | [`des`] | continuous-time discrete-event kernel |
//! | exper | [`exper`] | figure/table regeneration harness |
//! | obs | [`obs`] | spans, counters, histograms, trace export |
//! | traces | [`traces`] | streaming production-trace ingestion + amplifier |
//!
//! ## Quickstart
//!
//! ```
//! use cpo_iaas::prelude::*;
//!
//! // A 20-server problem with 40 VMs and affinity rules.
//! let size = ScenarioSize::with_servers(20);
//! let problem = ScenarioSpec::for_size(&size).generate(7);
//!
//! // Solve with the paper's hybrid (reduced budget for the doctest).
//! let config = NsgaConfig {
//!     population_size: 20,
//!     max_evaluations: 600,
//!     ..NsgaConfig::paper_defaults(Variant::Nsga3)
//! };
//! let outcome = EvoAllocator::nsga3_tabu(config).allocate(&problem);
//! assert!(outcome.is_clean());
//! ```

pub use cpo_core as core;
pub use cpo_cpsolve as cpsolve;
pub use cpo_des as des;
pub use cpo_exper as exper;
pub use cpo_model as model;
pub use cpo_moea as moea;
pub use cpo_obs as obs;
pub use cpo_platform as platform;
pub use cpo_scenario as scenario;
pub use cpo_tabu as tabu;
pub use cpo_topology as topology;
pub use cpo_traces as traces;

/// Everything a typical user needs.
pub mod prelude {
    pub use cpo_core::prelude::*;
    pub use cpo_model::prelude::*;
    pub use cpo_platform::prelude::*;
    pub use cpo_scenario::prelude::*;
}
