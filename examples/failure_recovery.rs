//! Platform failures (the paper's future-work events): servers fail at
//! random, the scheduler sees them with zero capacity and the next
//! window's reconfiguration plan evacuates their tenants; repair brings
//! the hosts back a few windows later.
//!
//! ```text
//! cargo run --release --example failure_recovery [windows]
//! ```

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::platform::prelude::*;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::request_gen::RequestSpec;

fn main() {
    let windows: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(10))],
    );
    let config = SimConfig {
        arrivals: RequestSpec {
            total_vms: 10,
            request_size: (1, 2),
            ..Default::default()
        },
        lifetime: (4, 9),
        seed: 7,
        server_failure_prob: 0.5, // a busy failure season
        repair_windows: 3,
    };
    let mut sim = PlatformSim::new(infra, config);
    let allocator = CpAllocator::default();

    println!(
        "{:>7} {:>9} {:>9} {:>10} {:>10} {:>11} {:>9}",
        "window", "admitted", "rejected", "offline", "stranded", "migrations", "tenants"
    );
    for _ in 0..windows {
        let r = sim.step(&allocator);
        println!(
            "{:>7} {:>9} {:>9} {:>10} {:>10} {:>11} {:>9}",
            r.window,
            r.admitted,
            r.rejected,
            r.offline_servers,
            r.stranded_vms,
            r.migrations,
            r.running_tenants,
        );
    }

    let log = sim.log();
    let failures = log.failure_count();
    let repairs = log
        .events()
        .iter()
        .filter(|e| matches!(e, Event::ServerRepaired { .. }))
        .count();
    println!(
        "\n{failures} failures, {repairs} repairs, {} migrations (evacuations included)",
        log.migration_count()
    );
    assert!(
        failures > 0,
        "with p=0.5 over {windows} windows a failure is expected"
    );

    // The event log exports as a JSON-lines trace for ops tooling.
    let trace = log.to_json_lines();
    println!("\ntrace sample (last 3 of {} events):", log.events().len());
    for line in trace
        .lines()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("  {line}");
    }
    let replayed =
        cpo_iaas::platform::prelude::EventLog::from_json_lines(&trace).expect("round-trip");
    assert_eq!(replayed.events().len(), log.events().len());
}
