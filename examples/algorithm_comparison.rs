//! Head-to-head comparison of all six algorithms on one seeded scenario —
//! a miniature of the paper's Section IV evaluation, printing the four
//! metrics (time, rejection, violations, provider cost) per algorithm.
//!
//! ```text
//! cargo run --release --example algorithm_comparison [servers] [seed]
//! ```

use cpo_iaas::exper::runner::{Algorithm, Effort};
use cpo_iaas::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let servers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let size = ScenarioSize::with_servers(servers);
    let problem = ScenarioSpec::for_size(&size)
        .with_heavy_affinity()
        .generate(seed);
    println!(
        "scenario: {} ({} requests, {} rules)\n",
        size.label(),
        problem.batch().request_count(),
        problem
            .batch()
            .requests()
            .iter()
            .map(|r| r.rules.len())
            .sum::<usize>()
    );

    println!(
        "{:>24} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "algorithm", "time[ms]", "reject", "violations", "cost", "clean"
    );
    for algorithm in Algorithm::all() {
        let allocator = algorithm.build(Effort::Quick, seed);
        let outcome = allocator.allocate(&problem);
        println!(
            "{:>24} {:>12.2} {:>10.3} {:>12} {:>12.1} {:>8}",
            algorithm.label(),
            outcome.elapsed.as_secs_f64() * 1_000.0,
            outcome.rejection_rate,
            outcome.violated_constraints,
            outcome.provider_cost(),
            if outcome.is_clean() { "yes" } else { "NO" },
        );
    }

    println!(
        "\nexpected shape (paper Figs. 7–11): round-robin fastest; the hybrids\n\
         reject least; only unmodified nsga2/nsga3 violate constraints; cp and\n\
         the hybrids post the lowest provider cost."
    );
}
