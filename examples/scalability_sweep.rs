//! Reproduce the Fig. 7 / Fig. 8 execution-time story in one run: sweep
//! problem sizes and watch the crossover — CP is fastest on small
//! problems and stops scaling, while the NSGA-III + tabu hybrid grows
//! gently.
//!
//! ```text
//! cargo run --release --example scalability_sweep [max_servers]
//! ```

use cpo_iaas::exper::runner::{Algorithm, Effort};
use cpo_iaas::prelude::*;

fn main() {
    let max_servers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let algorithms = [
        Algorithm::RoundRobin,
        Algorithm::ConstraintProgramming,
        Algorithm::Nsga3,
        Algorithm::Nsga3Tabu,
    ];
    let mut sizes = vec![10, 25, 50, 100, 200, 400, 800];
    sizes.retain(|&s| s <= max_servers);

    print!("{:>14}", "size");
    for a in &algorithms {
        print!(" {:>22}", a.label());
    }
    println!("  [time in ms]");

    for servers in sizes {
        let size = ScenarioSize::with_servers(servers);
        let problem = ScenarioSpec::for_size(&size).generate(7);
        print!("{:>14}", size.label());
        for algorithm in &algorithms {
            let outcome = algorithm.build(Effort::Quick, 7).allocate(&problem);
            print!(" {:>22.2}", outcome.elapsed.as_secs_f64() * 1_000.0);
        }
        println!();
    }

    println!(
        "\nexpected: constraint-programming wins small sizes, then its solve\n\
         time inflates (Fig. 8's cliff); nsga3-tabu stays on a gentle slope."
    );
}
