//! Portfolio scheduling: run CP, filtering and the NSGA-III + tabu hybrid
//! on the same batch and commit the best outcome — CP wins small batches,
//! the hybrid wins large contended ones, and the portfolio never has to
//! choose in advance.
//!
//! ```text
//! cargo run --release --example portfolio [servers] [seed]
//! ```

use cpo_iaas::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let servers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);

    let size = ScenarioSize::with_servers(servers);
    let problem = ScenarioSpec::for_size(&size)
        .with_heavy_affinity()
        .generate(seed);
    println!("scenario: {}\n", size.label());

    let quick = NsgaConfig {
        population_size: 40,
        max_evaluations: 2_000,
        ..NsgaConfig::paper_defaults(Variant::Nsga3)
    };

    // Show each member alone first.
    let members: Vec<(&str, Box<dyn Allocator>)> = vec![
        ("constraint-programming", Box::new(CpAllocator::default())),
        ("filtering", Box::new(FilteringAllocator)),
        (
            "nsga3-tabu",
            Box::new(EvoAllocator::nsga3_tabu(quick.clone()).with_seed(seed)),
        ),
    ];
    println!(
        "{:>24} {:>10} {:>12} {:>14} {:>12}",
        "allocator", "reject", "cost", "net revenue", "time[ms]"
    );
    for (name, member) in &members {
        let out = member.allocate(&problem);
        println!(
            "{:>24} {:>10.3} {:>12.1} {:>14.1} {:>12.2}",
            name,
            out.rejection_rate,
            out.provider_cost(),
            out.net_revenue(),
            out.elapsed.as_secs_f64() * 1_000.0
        );
    }

    // Then the portfolio over the same members.
    let portfolio = PortfolioAllocator::new(
        vec![
            Box::new(CpAllocator::default()),
            Box::new(FilteringAllocator),
            Box::new(EvoAllocator::nsga3_tabu(quick).with_seed(seed)),
        ],
        PortfolioCriterion::NetRevenue,
    );
    let best = portfolio.allocate(&problem);
    println!(
        "{:>24} {:>10.3} {:>12.1} {:>14.1} {:>12.2}   <- portfolio pick",
        "portfolio(net-revenue)",
        best.rejection_rate,
        best.provider_cost(),
        best.net_revenue(),
        best.elapsed.as_secs_f64() * 1_000.0
    );
    assert!(best.is_clean());
}
