//! Provider-side consolidation: start from a deliberately fragmented
//! placement (one VM per server), then let the optimiser replan with the
//! running allocation as `X^t` — the migration term of Eq. 15 now prices
//! every move, so the optimiser trades opex savings against migration
//! cost exactly as the paper's objective prescribes.
//!
//! ```text
//! cargo run --release --example consolidation
//! ```

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use cpo_iaas::tabu::{tabu_search, TabuConfig};

fn main() {
    let profile = ServerProfile::commodity(3);
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), profile.build_many(12))],
    );

    // Twelve small VMs, one per server: maximally fragmented.
    let mut batch = RequestBatch::new();
    for _ in 0..12 {
        batch.push_request(vec![vm_spec(2.0, 4_096.0, 40.0)], vec![]);
    }
    let mut fragmented = Assignment::unassigned(12);
    for k in 0..12 {
        fragmented.assign(VmId(k), ServerId(k));
    }

    let problem = AllocationProblem::new(infra, batch, Some(fragmented.clone()));
    let before = problem.evaluate(&fragmented);
    println!(
        "before: {} active servers, usage+opex = {:.1}",
        problem.tracker(&fragmented).active_servers(),
        before.usage_opex
    );

    // Tabu search directly over the assignment space, starting from the
    // running placement; the objective (Eq. 15) includes migration cost.
    let result = tabu_search(
        &problem,
        fragmented.clone(),
        &TabuConfig {
            max_iterations: 3_000,
            candidates: 48,
            ..Default::default()
        },
    );
    let after = problem.evaluate(&result.best);
    let tracker = problem.tracker(&result.best);
    let moves = result.best.migrations_from(&fragmented).len();

    println!(
        "after:  {} active servers, usage+opex = {:.1}, migration cost = {:.1} ({moves} moves)",
        tracker.active_servers(),
        after.usage_opex,
        after.migration
    );
    println!(
        "total objective: {:.1} -> {:.1} (must improve)",
        before.total(),
        after.total()
    );

    assert!(problem.is_feasible(&result.best));
    assert!(
        tracker.active_servers() < 12,
        "consolidation must shut servers down"
    );
    assert!(
        after.total() < before.total(),
        "the plan must pay for itself"
    );

    // The knee of the trade-off: migrating everything to one server would
    // minimise opex but the migration term caps how much moving is worth.
    println!("\nconsolidation pays for itself under the Eq. 15 trade-off ✓");
}
