//! The flight recorder on a failure-injected continuous-time run: the
//! always-on ring buffer captures every request's lifecycle plus server
//! failures/repairs, the dump is written as JSONL, and per-request
//! timelines are reconstructed and validated from it — the post-mortem
//! workflow that `exper des` / `exper timeline` automate.
//!
//! ```text
//! cargo run --release --example flight_recorder [horizon]
//! ```

use cpo_iaas::des::prelude::*;
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::obs::{flight, timeline};
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::prelude::ArrivalSpec;

fn main() {
    let horizon: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40.0);

    // 1. Arm the recorder. From here every arrival, admission, placement,
    //    migration, SLA breach, failure and repair drops one fixed-size
    //    event into the lock-free ring — ~3.5 MB, overwrite-oldest.
    flight::enable();

    // 2. A hostile little platform: tight fleet, brisk arrivals, servers
    //    failing every ~15 time units and staying down for ~3.
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(10))],
    );
    let arrivals = PoissonArrivals::new(
        ArrivalSpec {
            rate: 3.0,
            lifetime: (3.0, 8.0),
            ..Default::default()
        },
        7,
    );
    let config = DesConfig {
        window_length: 1.0,
        latency: LatencyModel::Fixed(0.05),
        failures: Some(FailureSpec {
            mtbf: 15.0,
            mttr: 3.0,
        }),
        seed: 7,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::new(infra, SimConfig::default(), config, arrivals);
    let report = sched.run(&RoundRobinAllocator, horizon);
    println!(
        "run: {} windows, {} admitted, {} rejected, {} platform failures",
        report.windows.len(),
        report.total_admitted(),
        report.total_rejected(),
        sched.executor().log().failure_count()
    );

    // 3. Dump the ring and read it back — the post-mortem path.
    let snap = flight::snapshot();
    println!(
        "flight ring: {} events recorded, {} overwritten, {} retrievable",
        snap.recorded,
        snap.overwritten,
        snap.events.len()
    );
    let dump = flight::dump_json_lines(&snap);
    let parsed = flight::dump_from_json_lines(&dump).expect("own dump must parse");
    assert_eq!(parsed.events, snap.events, "JSONL round trip must be exact");

    // 4. Reconstruct per-request timelines and self-check the lifecycle
    //    state machine on every one of them.
    let set = timeline::reconstruct(&parsed.events);
    let generated = snap
        .events
        .iter()
        .filter(|e| e.kind == flight::FlightKind::Generated)
        .count();
    println!(
        "timelines: {} requests reconstructed from {} generated ({} orphan events)",
        set.timelines.len(),
        generated,
        set.orphans.len()
    );
    assert_eq!(
        set.timelines.len(),
        generated,
        "every generated request must have a timeline"
    );
    assert!(set.orphans.is_empty(), "no event may lose its request");
    let errors = set.all_errors();
    assert!(
        errors.is_empty(),
        "every timeline must be complete and ordered: {errors:?}"
    );
    println!("lifecycle check: every timeline complete, ordered, gap-free");

    // 5. Show the most eventful request — a consumer's-eye view of the
    //    failures it lived through.
    let busiest = set
        .timelines
        .iter()
        .max_by_key(|t| t.events.len())
        .expect("at least one request");
    println!("\nbusiest request:\n{}", busiest.render());
}
