//! Quickstart: build a small cloud, submit a request batch with affinity
//! rules, solve it with the paper's NSGA-III + tabu hybrid, and inspect
//! the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;

fn main() {
    // --- Provider side: two datacenters, four commodity servers each. ---
    let profile = ServerProfile::commodity(3); // CPU / RAM / disk
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![
            ("paris-1".into(), profile.build_many(4)),
            ("lyon-1".into(), profile.build_many(4)),
        ],
    );
    println!(
        "infrastructure: {} datacenters, {} servers, {} attributes",
        infra.datacenter_count(),
        infra.server_count(),
        infra.attr_count()
    );

    // --- Consumer side: three requests with different placement needs. ---
    let mut batch = RequestBatch::new();

    // A replicated database: two replicas that must not share a server.
    batch.push_request(
        vec![vm_spec(8.0, 16_384.0, 200.0), vm_spec(8.0, 16_384.0, 200.0)],
        vec![AffinityRule::new(
            AffinityKind::DifferentServer,
            vec![VmId(0), VmId(1)],
        )],
    );
    // A chatty app tier: three VMs co-located on one server for latency.
    batch.push_request(
        vec![vm_spec(2.0, 4_096.0, 40.0); 3],
        vec![AffinityRule::new(
            AffinityKind::SameServer,
            vec![VmId(2), VmId(3), VmId(4)],
        )],
    );
    // A disaster-recovery pair: one VM per datacenter.
    batch.push_request(
        vec![vm_spec(4.0, 8_192.0, 100.0), vm_spec(4.0, 8_192.0, 100.0)],
        vec![AffinityRule::new(
            AffinityKind::DifferentDatacenter,
            vec![VmId(5), VmId(6)],
        )],
    );

    let problem = AllocationProblem::new(infra, batch, None);
    let (g, m, n, h) = problem.dims();
    println!("problem: g={g} datacenters, m={m} servers, n={n} VMs, h={h} attributes");

    // --- Solve with the paper's hybrid (Table III settings). ---
    let config = NsgaConfig::paper_defaults(Variant::Nsga3);
    let allocator = EvoAllocator::nsga3_tabu(config);
    let outcome = allocator.allocate(&problem);

    println!("\nallocator: {}", allocator.name());
    println!("elapsed:   {:?}", outcome.elapsed);
    println!("evaluations: {}", outcome.evaluations);
    println!("rejection rate: {:.3}", outcome.rejection_rate);
    println!("violated constraints: {}", outcome.violated_constraints);
    let z = &outcome.objectives;
    println!(
        "objectives (Eq. 15): usage+opex={:.2}  downtime={:.2}  migration={:.2}  total={:.2}",
        z.usage_opex,
        z.downtime,
        z.migration,
        z.total()
    );

    println!("\nplacement:");
    for k in problem.batch().vm_ids() {
        match outcome.assignment.server_of(k) {
            Some(j) => {
                let dc = problem.infra().datacenter_of(j);
                println!(
                    "  vm {:>2} -> server {:>2} ({})",
                    k.index(),
                    j.index(),
                    problem.infra().datacenters()[dc.index()].name
                );
            }
            None => println!("  vm {:>2} -> rejected", k.index()),
        }
    }

    assert!(
        outcome.is_clean(),
        "the hybrid never emits an invalid placement"
    );

    // Verify the rules actually hold.
    let a = &outcome.assignment;
    assert_ne!(
        a.server_of(VmId(0)),
        a.server_of(VmId(1)),
        "replicas separated"
    );
    assert_eq!(
        a.server_of(VmId(2)),
        a.server_of(VmId(3)),
        "app tier co-located"
    );
    assert_eq!(
        a.server_of(VmId(3)),
        a.server_of(VmId(4)),
        "app tier co-located"
    );
    println!("\nall affinity rules verified ✓");
}
