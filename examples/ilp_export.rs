//! Export the explicit 0/1 integer program (the paper's Section III
//! "linear programming approach") for a small instance: variables,
//! constraint rows per equation, and a feasibility check of a concrete
//! placement against the program.
//!
//! ```text
//! cargo run --release --example ilp_export
//! ```

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::model::ilp::IlpFormulation;
use cpo_iaas::prelude::*;

fn main() {
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![
            ("dc0".into(), ServerProfile::commodity(3).build_many(2)),
            ("dc1".into(), ServerProfile::commodity(3).build_many(2)),
        ],
    );
    let mut batch = RequestBatch::new();
    batch.push_request(
        vec![vm_spec(4.0, 8192.0, 100.0); 2],
        vec![AffinityRule::new(
            AffinityKind::SameServer,
            vec![VmId(0), VmId(1)],
        )],
    );
    batch.push_request(
        vec![vm_spec(2.0, 4096.0, 50.0); 2],
        vec![AffinityRule::new(
            AffinityKind::DifferentDatacenter,
            vec![VmId(2), VmId(3)],
        )],
    );
    let problem = AllocationProblem::new(infra, batch, None);
    let ilp = IlpFormulation::from_problem(&problem);

    println!(
        "program: {} variables ({} placement x_jk + {} activation y_j)",
        ilp.n_vars,
        ilp.m * ilp.n,
        ilp.m
    );
    println!("rows per equation:");
    for (kind, count) in ilp.row_counts() {
        println!("  {kind:?}: {count}");
    }

    // Check a concrete placement against the program.
    let mut x = Assignment::unassigned(4);
    x.assign(VmId(0), ServerId(0));
    x.assign(VmId(1), ServerId(0)); // same server ✓
    x.assign(VmId(2), ServerId(1)); // dc0
    x.assign(VmId(3), ServerId(2)); // dc1 ✓
    let solution = ilp.solution_of(&x);
    println!(
        "\nplacement feasible per ILP:   {}",
        ilp.is_feasible(&solution)
    );
    println!("placement feasible per model: {}", problem.is_feasible(&x));
    println!(
        "linear objective (usage+opex): {:.2}",
        ilp.objective_value(&solution)
    );
    println!(
        "model usage+opex:              {:.2}",
        problem.evaluate(&x).usage_opex
    );
    assert_eq!(ilp.is_feasible(&solution), problem.is_feasible(&x));

    // Break a rule and watch the right row fail.
    x.assign(VmId(3), ServerId(0)); // both in dc0: violates different-dc
    let bad = ilp.solution_of(&x);
    println!("\nafter breaking the different-datacenter rule:");
    for row in ilp.violated_rows(&bad) {
        println!("  violated row: {:?} (rhs {})", row.kind, row.rhs);
    }
    assert!(!ilp.is_feasible(&bad));
}
