//! Open-loop continuous-time arrivals through the DES kernel: Poisson
//! requests accumulate into cyclic windows, the allocator solves at each
//! boundary, and the *solve latency itself* feeds back into the timeline
//! — a slower allocator makes every consumer wait longer for admission
//! and stretches the scheduling cycle.
//!
//! ```text
//! cargo run --release --example open_loop_arrivals [horizon]
//! ```

use cpo_iaas::des::prelude::*;
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::prelude::ArrivalSpec;

fn run_with(latency: LatencyModel, label: &str, horizon: f64) {
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![
            ("dc-a".into(), ServerProfile::commodity(3).build_many(10)),
            ("dc-b".into(), ServerProfile::commodity(3).build_many(10)),
        ],
    );
    let arrivals = PoissonArrivals::new(
        ArrivalSpec {
            rate: 4.0, // four requests per time unit, windows are 1 unit
            lifetime: (3.0, 8.0),
            ..Default::default()
        },
        2024,
    );
    let config = DesConfig {
        window_length: 1.0,
        latency,
        failures: Some(FailureSpec {
            mtbf: 60.0,
            mttr: 4.0,
        }),
        seed: 2024,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::new(infra, SimConfig::default(), config, arrivals);
    let report = sched.run(&RoundRobinAllocator, horizon);

    println!("--- {label} ---");
    println!(
        "  windows closed      {:>6}   (horizon {:.0} time units)",
        report.windows.len(),
        horizon
    );
    println!(
        "  requests decided    {:>6}   admitted {} / rejected {}",
        report.waiting.count,
        report.total_admitted(),
        report.total_rejected()
    );
    println!(
        "  request waiting     mean {:.3}   max {:.3} time units",
        report.waiting.mean(),
        report.waiting.max
    );
    let log = sched.executor().log();
    println!(
        "  platform events     {} logged ({} failures)",
        log.events().len(),
        log.failure_count()
    );
}

fn main() {
    let horizon: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);

    println!("Open-loop Poisson arrivals, identical workload, three solver speeds.\n");
    // An instant solver: requests wait only for their window boundary.
    run_with(
        LatencyModel::Fixed(0.01),
        "near-instant solver (0.01/window)",
        horizon,
    );
    // A solver eating half the window: every decision lands half a window late.
    run_with(
        LatencyModel::Fixed(0.5),
        "half-window solver (0.50/window)",
        horizon,
    );
    // A solver slower than the window: the cycle itself stretches and
    // queueing delay compounds — the paper's Fig. 7/8 execution times
    // becoming consumer-visible admission latency.
    run_with(
        LatencyModel::Fixed(1.5),
        "overloaded solver (1.50/window)",
        horizon,
    );
}
