//! End-to-end production-trace replay with every invariant monitor armed:
//! the committed Azure-style sample trace is amplified ×20, streamed
//! through the continuous-time scheduler over the memory-lean
//! `FleetExecutor`, and the run is asserted clean — zero capacity or
//! lifecycle violations under strict monitoring.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use cpo_iaas::des::prelude::*;
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::obs::flight;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::prelude::ArrivalSpec;
use cpo_iaas::traces::prelude::*;
use std::io::Cursor;

/// The same 64-row seed trace the standing macro-benchmark embeds.
const SAMPLE: &str = include_str!("data/azure_sample.csv");

fn main() {
    // Arm the full fail-fast monitor set: any capacity overshoot or
    // lifecycle defect panics instead of silently skewing results.
    flight::enable();
    flight::set_strict(true);

    let reader =
        AzureReader::new(Cursor::new(SAMPLE), MalformedPolicy::Fail).expect("sample parses");
    let amp = Amplifier::new(
        reader,
        AmplifyConfig {
            factor: 20,
            time_jitter: 30.0,
            demand_jitter: 0.2,
            seed: 7,
        },
    )
    .expect("sample amplifies");
    let total = amp.len();
    let horizon = amp.horizon() + 120.0;
    println!(
        "replaying {} arrivals ({}-row seed × 20) over {:.0} s of simulated time",
        total,
        amp.base_len(),
        horizon
    );

    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(64))],
    );
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), 7);
    let config = DesConfig {
        window_length: 60.0,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed: 7,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::with_backend(FleetExecutor::new(infra), config, source);
    let report = sched.run(&RoundRobinAllocator, horizon);
    if let Some(err) = sched.source().error() {
        panic!("trace stream failed: {err}");
    }

    assert_eq!(sched.source().emitted() as usize, total, "stream drained");
    // The fleet's books must balance exactly after the replay: residual +
    // used == effective capacity on every healthy server.
    sched.backend().verify().expect("fleet accounting balances");

    let peak_vms = report
        .windows
        .iter()
        .map(|w| w.running_vms)
        .max()
        .unwrap_or(0);
    println!(
        "  {} windows, admitted {} / rejected {}, peak {} running VMs",
        report.windows.len(),
        report.total_admitted(),
        report.total_rejected(),
        peak_vms
    );
    // Strict monitors panic on violation, so reaching this line proves a
    // clean replay; make the claim explicit for the reader.
    println!("  strict monitors: zero invariant violations");
}
