//! Operate a live IaaS platform over cyclic scheduling windows: requests
//! arrive, tenants live and depart, the allocator replans each window and
//! the reconfiguration plan (Eq. 26) migrates running resources.
//!
//! ```text
//! cargo run --release --example platform_timeline [windows]
//! ```

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::request_gen::RequestSpec;

fn main() {
    let windows: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![
            ("dc-a".into(), ServerProfile::commodity(3).build_many(12)),
            ("dc-b".into(), ServerProfile::commodity(3).build_many(12)),
        ],
    );
    let config = SimConfig {
        arrivals: RequestSpec {
            total_vms: 16,
            request_size: (1, 3),
            ..Default::default()
        },
        lifetime: (3, 7),
        seed: 2024,
        ..Default::default()
    };
    let mut sim = PlatformSim::new(infra, config);

    // A cheap allocator keeps the window latency low; swap in
    // EvoAllocator::nsga3_tabu(...) to see the optimiser replan live.
    let allocator = CpAllocator::default();

    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>11} {:>12}",
        "window",
        "arrivals",
        "admitted",
        "rejected",
        "migrations",
        "tenants",
        "vms",
        "servers",
        "cost"
    );
    for _ in 0..windows {
        let r = sim.step(&allocator);
        println!(
            "{:>7} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>11} {:>12.1}",
            r.window,
            r.arrivals,
            r.admitted,
            r.rejected,
            r.migrations,
            r.running_tenants,
            r.running_vms,
            r.active_servers,
            r.provider_cost,
        );
        // Invariant: the live platform never violates capacity or rules.
        let report = sim.verify_state();
        assert!(report.is_feasible(), "platform corrupted: {report:?}");
    }

    let log = sim.log();
    println!(
        "\ntotals: {} migrations, {} rejections over {} windows; state feasible ✓",
        log.migration_count(),
        log.rejection_count(),
        windows
    );
}
