//! End-to-end telemetry: run the paper's hybrid and the CP baseline with
//! instrumentation on, drive a short open-loop DES simulation, then dump
//! a `chrome://tracing`-compatible span trace and a JSON-lines metrics
//! file under `target/telemetry/`.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```
//!
//! Open `target/telemetry/trace.json` in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see per-generation NSGA-III spans nested
//! under each allocator run, with CP solves and DES windows alongside.

use cpo_iaas::des::prelude::*;
use cpo_iaas::exper::runner::{run_sweep, Algorithm, Effort};
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::prelude::ArrivalSpec;
use std::fs;

fn main() {
    cpo_iaas::obs::enable();

    // --- Solvers: one small sweep cell per algorithm. ---
    let sizes = [ScenarioSize::with_servers(10)];
    let algorithms = [Algorithm::Nsga3Tabu, Algorithm::ConstraintProgramming];
    let cells = run_sweep(&algorithms, &sizes, Effort::Quick, 2, true, 7);
    for c in &cells {
        println!(
            "{:>24}: {:.2} ms mean over {} runs",
            c.algorithm.label(),
            c.metrics.time_ms.mean,
            c.metrics.runs
        );
    }

    // --- Simulator: a short open-loop Poisson run through the DES. ---
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(10))],
    );
    let arrivals = PoissonArrivals::new(
        ArrivalSpec {
            rate: 3.0,
            lifetime: (2.0, 5.0),
            ..Default::default()
        },
        7,
    );
    let config = DesConfig {
        window_length: 1.0,
        latency: LatencyModel::Fixed(0.1),
        failures: None,
        seed: 7,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::new(infra, SimConfig::default(), config, arrivals);
    let report = sched.run(&RoundRobinAllocator, 20.0);
    println!(
        "{:>24}: {} windows, {} admitted / {} rejected",
        "des",
        report.windows.len(),
        report.total_admitted(),
        report.total_rejected()
    );

    // --- Export. ---
    let snap = cpo_iaas::obs::snapshot();
    fs::create_dir_all("target/telemetry").expect("create target/telemetry");
    let trace = cpo_iaas::obs::chrome_trace(&snap);
    fs::write("target/telemetry/trace.json", &trace).expect("write trace.json");
    let metrics = cpo_iaas::obs::metrics_json_lines(&snap);
    fs::write("target/telemetry/metrics.jsonl", &metrics).expect("write metrics.jsonl");
    println!(
        "\nwrote target/telemetry/trace.json ({} events, open in chrome://tracing)",
        snap.events.len()
    );
    println!(
        "wrote target/telemetry/metrics.jsonl ({} lines)",
        metrics.lines().count()
    );

    // --- Self-check: the acceptance contents are actually there. ---
    let generations = snap
        .events
        .iter()
        .filter(|e| e.name == "nsga3.generation")
        .count();
    assert!(generations > 0, "per-generation NSGA-III spans recorded");
    assert!(
        snap.counters.get("cp.propagations").copied().unwrap_or(0) > 0,
        "CP propagation counter recorded"
    );
    assert!(
        snap.gauges.contains_key("des.queue_depth"),
        "per-window DES queue-depth gauge recorded"
    );
    let parsed = cpo_iaas::obs::json::parse(&trace).expect("chrome trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .expect("chrome trace has a traceEvents array");
    println!(
        "self-check ✓  {generations} nsga3.generation spans, \
         {} cp.propagations, chrome trace parses ({} trace events)",
        snap.counters["cp.propagations"],
        match events {
            cpo_iaas::obs::json::Value::Arr(items) => items.len(),
            _ => 0,
        }
    );
}
