//! Offline stand-in for `rayon`: the `par_iter().map().collect()` shape
//! this workspace uses, executed on scoped `std::thread`s with
//! order-preserving chunked collection.

use std::num::NonZeroUsize;

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParMap, ParIter};
}

/// Number of worker threads (available parallelism, min 1).
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Borrowing conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` (run on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on scoped threads and collects in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        let n = self.items.len();
        if n == 0 {
            return C::from_ordered(Vec::new());
        }
        let threads = workers().min(n);
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let out: Vec<R> = if threads <= 1 {
            self.items.iter().map(f).collect()
        } else {
            let mut parts: Vec<Vec<R>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("rayon-stub worker panicked"));
                }
            });
            parts.into_iter().flatten().collect()
        };
        C::from_ordered(out)
    }
}

/// Collections buildable from an ordered parallel map result.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
