//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate. It implements exactly the surface the
//! workspace uses: [`rngs::SmallRng`] (xoshiro256++ seeded through
//! SplitMix64, like upstream on 64-bit targets), [`SeedableRng::seed_from_u64`]
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//! Streams are deterministic per seed but are not guaranteed to be
//! bit-identical to upstream `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from raw random bits (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as upstream does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & (1 << 63) != 0
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types samplable uniformly from a range (`rng.gen_range(lo..hi)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Widening-multiply range reduction (Lemire); the bias is
                // < 2^-64 for every span this workspace draws.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(lo, hi.wrapping_add(1), rng)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let u = f64::standard(rng);
        let v = lo + (hi - lo) * u;
        if v < hi {
            v
        } else {
            // Guard against rounding up onto the open bound.
            f64::from_bits(hi.to_bits() - 1)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + (hi - lo) * f32::standard(rng);
        if v < hi {
            v
        } else {
            f32::from_bits(hi.to_bits() - 1)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f32::standard(rng)
    }
}

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (`f64`/`f32` in `[0,1)`, any `bool`, any int).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform value from the range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 never
            // produces four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&v));
            let x = rng.gen_range(-1.5_f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reference_rngs_also_sample() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let a = draw(&mut rng);
        assert!((0.0..1.0).contains(&a));
    }
}
