//! Offline stand-in for `serde`: a value-tree serialisation model.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `serde` to this crate. [`Serialize`] lowers a type to a [`Value`] tree
//! and [`Deserialize`] lifts it back; `serde_json` (also patched) renders
//! and parses the tree as JSON. The derive macros (`serde_derive`, behind
//! the `derive` feature) support the attribute forms this workspace uses:
//! `#[serde(tag = "...", rename_all = "snake_case")]` on enums.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A deserialisation/serialisation error (message only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A dynamically-typed serialisation tree (the JSON data model).
/// Object fields keep insertion order so rendered output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As [`Value::get`] but a missing key or non-object is an [`Error`].
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types lowerable to a [`Value`] tree.
pub trait Serialize {
    /// The value tree of `self`.
    fn to_value(&self) -> Value;
}

/// Types liftable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) ;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::msg(format!(
                        "expected array of length {LEN}, got {}",
                        items.len()
                    ))),
                    other => Err(Error::msg(format!(
                        "expected array, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64, String::from("x"));
        assert_eq!(
            <(usize, f64, String)>::from_value(&t.to_value()).unwrap(),
            t
        );
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert!(v.get("b").is_none());
        assert!(v.field("b").is_err());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::UInt(1)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
    }
}
