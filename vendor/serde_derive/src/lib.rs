//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree model of the patched `serde` crate, parsing the input token
//! stream by hand (no `syn`/`quote` available offline). Supported shapes —
//! the ones this workspace uses:
//!
//! * structs with named fields;
//! * tuple structs (newtypes serialise transparently);
//! * enums with unit and named-field variants, optionally with
//!   `#[serde(tag = "...")]` (internal tagging) and
//!   `#[serde(rename_all = "snake_case")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
struct Input {
    name: String,
    tag: Option<String>,
    rename_all: Option<String>,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Strips surrounding quotes from a string literal's token text.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// `CamelCase` → `snake_case`.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Applies the container's `rename_all` rule to a variant name.
fn rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        Some("snake_case") => snake_case(name),
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some(other) => panic!("serde stub: unsupported rename_all rule `{other}`"),
        None => name.to_string(),
    }
}

/// Parses `tag = "..."` / `rename_all = "..."` pairs from the tokens
/// inside `#[serde(...)]`.
fn parse_serde_attr(tokens: TokenStream, tag: &mut Option<String>, rename_all: &mut Option<String>) {
    let mut iter = tokens.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(key) = &tt {
            let key = key.to_string();
            if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                iter.next();
                if let Some(TokenTree::Literal(lit)) = iter.next() {
                    let val = unquote(&lit.to_string());
                    match key.as_str() {
                        "tag" => *tag = Some(val),
                        "rename_all" => *rename_all = Some(val),
                        other => panic!("serde stub: unsupported serde attribute `{other}`"),
                    }
                }
            }
        }
    }
}

/// Parses the fields of a braced body: `vis? name: Type, ...`
/// (attributes on fields are skipped).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip field attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next(); // the [...] group
        }
        // Skip visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(name)) => fields.push(name.to_string()),
            None => break,
            Some(other) => panic!("serde stub: unexpected token in fields: {other}"),
        }
        // Consume `: Type` up to the next top-level comma. Angle brackets
        // appear as plain '<'/'>' puncts; track their depth so commas in
        // `Vec<(A, B)>` don't split the field.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts the fields of a parenthesised (tuple) body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle = 0i32;
    let mut saw_any = false;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

/// Parses enum variants: `attrs? Name ( {...} | (...) )? , ...`
fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde stub: unexpected token in enum body: {other}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip discriminant (`= expr`) and the separating comma.
        for tt in iter.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

/// Parses the whole derive input item.
fn parse_input(input: TokenStream) -> Input {
    let mut tag = None;
    let mut rename_all = None;
    let mut iter = input.into_iter().peekable();

    // Container attributes.
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.next() {
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(path)) = inner.next() {
                if path.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        parse_serde_attr(args.stream(), &mut tag, &mut rename_all);
                    }
                }
            }
        }
    }

    // Visibility.
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }

    let item_kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub: expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub: generic types are not supported (derive on `{name}`)");
    }

    let kind = match (item_kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Kind::Struct(Fields::Unit)
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (k, t) => panic!("serde stub: unsupported item shape ({k}, {t:?})"),
    };

    Input {
        name,
        tag,
        rename_all,
        kind,
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for (vname, fields) in variants {
                let renamed = rename(vname, input.rename_all.as_deref());
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => serde::Value::Str(\"{renamed}\".to_string()),"
                    ),
                    Fields::Tuple(1) => match &input.tag {
                        Some(_) => panic!(
                            "serde stub: newtype variants unsupported with tag ({name}::{vname})"
                        ),
                        None => format!(
                            "{name}::{vname}(x0) => serde::Value::Object(vec![(\"{renamed}\"\
                             .to_string(), serde::Serialize::to_value(x0))]),"
                        ),
                    },
                    Fields::Tuple(_) => {
                        panic!("serde stub: multi-field tuple variants unsupported")
                    }
                    Fields::Named(fields) => {
                        let pats = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "fields.push((\"{f}\".to_string(), \
                                     serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        let head = match &input.tag {
                            Some(tag) => format!(
                                "let mut fields = vec![(\"{tag}\".to_string(), \
                                 serde::Value::Str(\"{renamed}\".to_string()))];"
                            ),
                            None => "let mut fields = Vec::new();".to_string(),
                        };
                        let finish = match &input.tag {
                            Some(_) => "serde::Value::Object(fields)".to_string(),
                            None => format!(
                                "serde::Value::Object(vec![(\"{renamed}\".to_string(), \
                                 serde::Value::Object(fields))])"
                            ),
                        };
                        format!(
                            "{name}::{vname} {{ {pats} }} => {{ {head} {} {finish} }}",
                            pushes.join(" ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde stub: generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(items.get({i}).ok_or_else(|| serde::Error::msg(\"missing tuple field\"))?)?"))
                .collect();
            format!(
                "match v {{ serde::Value::Array(items) => Ok({name}({})), \
                 other => Err(serde::Error::msg(format!(\"expected array, got {{}}\", other.kind()))) }}",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(v.field(\"{f}\")?)?,")
                })
                .collect();
            format!("Ok({name} {{ {} }})", items.join(" "))
        }
        Kind::Enum(variants) => {
            let tag_key = input.tag.clone();
            let mut arms = Vec::new();
            let mut unit_arms = Vec::new();
            for (vname, fields) in variants {
                let renamed = rename(vname, input.rename_all.as_deref());
                match fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{renamed}\" => Ok({name}::{vname}),"));
                        if tag_key.is_some() {
                            arms.push(format!("\"{renamed}\" => Ok({name}::{vname}),"));
                        }
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(body.field(\"{f}\")?)?,"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "\"{renamed}\" => Ok({name}::{vname} {{ {} }}),",
                            items.join(" ")
                        ));
                    }
                    Fields::Tuple(1) => {
                        if tag_key.is_some() {
                            panic!("serde stub: newtype variants unsupported with tag");
                        }
                        arms.push(format!(
                            "\"{renamed}\" => Ok({name}::{vname}(serde::Deserialize::from_value(body)?)),"
                        ));
                    }
                    Fields::Tuple(_) => {
                        panic!("serde stub: multi-field tuple variants unsupported")
                    }
                }
            }
            match tag_key {
                Some(tag) => format!(
                    "let tag = match v.field(\"{tag}\")? {{ \
                         serde::Value::Str(s) => s.clone(), \
                         other => return Err(serde::Error::msg(format!(\
                             \"expected string tag, got {{}}\", other.kind()))) }};\n\
                     let body = v;\n\
                     let _ = body;\n\
                     match tag.as_str() {{ {} other => Err(serde::Error::msg(\
                         format!(\"unknown variant `{{other}}`\"))) }}",
                    arms.join(" ")
                ),
                None => format!(
                    "match v {{\n\
                         serde::Value::Str(s) => match s.as_str() {{ {units} other => \
                             Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))) }},\n\
                         serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                             let (key, body) = &fields[0];\n\
                             let _ = body;\n\
                             match key.as_str() {{ {arms} other => Err(serde::Error::msg(\
                                 format!(\"unknown variant `{{other}}`\"))) }}\n\
                         }}\n\
                         other => Err(serde::Error::msg(format!(\
                             \"expected enum value, got {{}}\", other.kind()))),\n\
                     }}",
                    units = unit_arms.join(" "),
                    arms = arms.join(" ")
                ),
            }
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde stub: generated Deserialize impl parses")
}
