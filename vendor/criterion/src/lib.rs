//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `black_box`) and
//! measures each closure with plain wall-clock timing: a warm-up pass and
//! `sample_size` timed iterations, reporting mean time per iteration and
//! derived throughput. No statistics, plots or baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing const-folding of benchmark inputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Builds a bare parameterised id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times one benchmark closure.
pub struct Bencher {
    /// Timed iterations to run.
    iterations: u64,
    /// Measured mean time per iteration (filled by [`Bencher::iter`]).
    mean: Duration,
}

impl Bencher {
    /// Runs `f` for warm-up plus the configured iterations, recording the
    /// mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.mean = start.elapsed() / u32::try_from(self.iterations).unwrap_or(1);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores target times.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores warm-up times.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:?}/iter ({} iters)",
            self.name,
            id.into_id(),
            b.mean,
            b.iterations
        );
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: {:?}/iter ({} iters)",
            self.name,
            id.into_id(),
            b.mean,
            b.iterations
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.benchmark_group("crit").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
