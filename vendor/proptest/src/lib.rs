//! Offline stand-in for `proptest`.
//!
//! Runs each property over `ProptestConfig::cases` deterministic random
//! inputs (seeded per test name, so failures reproduce). No shrinking: a
//! failing case reports its case index and seed instead. Supports the
//! combinators this workspace uses: range strategies, [`Just`], tuples,
//! `prop_map`, `prop_flat_map` and [`collection::vec`].

/// Deterministic generator driving value production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0,1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then uses it to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters produced values (retries up to 100 times).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..100 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 100 consecutive values", self.whence);
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+) ;)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length argument of [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Picks a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// A failed property case (what `prop_assert!` returns through the
    /// body's `Result`, as in upstream proptest).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// How a property is executed.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Stable (cross-run) seed derived from the test's name.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn` runs its body over random values
/// drawn from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::name_seed(stringify!($name));
                for case in 0..config.cases {
                    let seed = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut rng = $crate::TestRng::seed(seed);
                    $(let $pat = $crate::Strategy::new_value(&$strat, &mut rng);)+
                    let run = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    match outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(err)) => {
                            panic!(
                                "proptest stub: property `{}` failed at case {}/{} (seed {:#x}): {}",
                                stringify!($name), case + 1, config.cases, seed, err
                            );
                        }
                        ::std::result::Result::Err(cause) => {
                            eprintln!(
                                "proptest stub: property `{}` failed at case {}/{} (seed {:#x})",
                                stringify!($name), case + 1, config.cases, seed
                            );
                            ::std::panic::resume_unwind(cause);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` inside a property: fails the case via `Err` like upstream.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{left:?}`, right: `{right:?}`)",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{left:?}`, right: `{right:?}`): {}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// `assert_ne!` inside a property: fails the case via `Err` like upstream.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` (both: `{left:?}`)",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` (both: `{left:?}`): {}",
                format!($($fmt)+),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5_f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u64..5, 1usize..4), v in collection::vec(0usize..7, 2..6)) {
            prop_assert!(a < 5 && b >= 1);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn map_and_flat_map(n in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..5).prop_map(|(n, k)| n + k))) {
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::seed(crate::name_seed("x"));
        let mut b = TestRng::seed(crate::name_seed("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
