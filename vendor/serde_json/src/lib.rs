//! Offline stand-in for `serde_json`: JSON rendering and parsing over the
//! patched `serde` crate's [`Value`] tree. Compact output matches upstream
//! serde_json's (`{"k":v,...}`, no spaces); pretty output uses two-space
//! indentation.

pub use serde::{Error, Value};

/// `Result` alias matching upstream's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the float/integer distinction a JSON reader expects.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no infinities/NaN; mirror upstream's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
                .and_then(|_| {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_upstream_shape() {
        let v = Value::Object(vec![
            ("event".into(), Value::Str("server_failed".into())),
            ("window".into(), Value::UInt(2)),
            ("nested".into(), Value::Array(vec![Value::Int(-1), Value::Float(1.5)])),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"event\":\"server_failed\",\"window\":2,\"nested\":[-1,1.5]}"
        );
    }

    #[test]
    fn parse_roundtrip() {
        let s = "{\"a\":1,\"b\":[true,null,\"x\\ny\"],\"c\":-2.5e3}";
        let v: Value = from_str(s).unwrap();
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(
            v.get("b"),
            Some(&Value::Array(vec![
                Value::Bool(true),
                Value::Null,
                Value::Str("x\ny".into())
            ]))
        );
        assert_eq!(v.get("c"), Some(&Value::Float(-2500.0)));
        let rendered = to_string(&v).unwrap();
        let v2: Value = from_str(&rendered).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::UInt(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.125f64).unwrap(), "0.125");
    }

    #[test]
    fn errors_carry_positions() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
